package simcheck

import (
	"sort"

	"repro/internal/privacy"
	"repro/internal/raid"
)

// modelFile is the reference model's view of one committed file: the
// exact logical chunk payloads the distributor must serve back,
// regardless of mislead decoys, mirrors, parity or migrations.
type modelFile struct {
	client string
	name   string
	pl     privacy.Level
	raidL  raid.Level
	chunks [][]byte
	// limbo marks a file whose RemoveFile failed partway: the workload
	// stops touching it and the checkpoint retries the remove (with
	// faults suspended) until the tables agree it is gone.
	limbo bool
}

func (f *modelFile) bytes() []byte {
	var out []byte
	for _, c := range f.chunks {
		out = append(out, c...)
	}
	return out
}

// model is the in-memory reference the oracle compares the distributor
// against. It tracks only logical content and identity; everything
// physical (placement, vids, stripes) is read back through StateView.
type model struct {
	files map[string]*modelFile // key: client + "/" + name
	// lastGen remembers each FID's generation at the previous checkpoint
	// so the oracle can assert per-file generation monotonicity.
	lastGen map[uint64]uint64
	// lastDistGen is the distributor-wide counter at the last checkpoint.
	lastDistGen uint64
	policy      privacy.ChunkSizePolicy
}

func newModel() *model {
	return &model{
		files:   make(map[string]*modelFile),
		lastGen: make(map[uint64]uint64),
		policy:  privacy.DefaultChunkSizes(),
	}
}

func fileKey(client, name string) string { return client + "/" + name }

// split mirrors the chunker's size policy: fixed-size chunks at the
// level's chunk size, and an empty payload still occupies one chunk.
func (m *model) split(data []byte, pl privacy.Level) [][]byte {
	size, err := m.policy.Size(pl)
	if err != nil || size <= 0 {
		size = 64 << 10
	}
	if len(data) == 0 {
		return [][]byte{{}}
	}
	var chunks [][]byte
	for off := 0; off < len(data); off += size {
		end := off + size
		if end > len(data) {
			end = len(data)
		}
		chunks = append(chunks, append([]byte(nil), data[off:end]...))
	}
	return chunks
}

func (m *model) addFile(client, name string, data []byte, pl privacy.Level, rl raid.Level) {
	m.files[fileKey(client, name)] = &modelFile{
		client: client, name: name, pl: pl, raidL: rl,
		chunks: m.split(data, pl),
	}
}

func (m *model) drop(client, name string) { delete(m.files, fileKey(client, name)) }

// live returns the non-limbo files in deterministic (client, name)
// order — the population the workload picks read/update targets from.
func (m *model) live() []*modelFile {
	var out []*modelFile
	for _, f := range m.files {
		if !f.limbo {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].client != out[j].client {
			return out[i].client < out[j].client
		}
		return out[i].name < out[j].name
	})
	return out
}

// limboFiles returns files whose remove must be completed, in
// deterministic order.
func (m *model) limboFiles() []*modelFile {
	var out []*modelFile
	for _, f := range m.files {
		if f.limbo {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].client != out[j].client {
			return out[i].client < out[j].client
		}
		return out[i].name < out[j].name
	})
	return out
}
