package transport

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/provider"
)

// flakyTransport fails the first N round-trips per path at the network
// layer (no HTTP response), then passes through, recording attempts.
type flakyTransport struct {
	inner http.RoundTripper

	mu    sync.Mutex
	fails map[string]int
	calls map[string]int
}

func newFlakyTransport(inner http.RoundTripper) *flakyTransport {
	return &flakyTransport{inner: inner, fails: map[string]int{}, calls: map[string]int{}}
}

func (f *flakyTransport) failNext(path string, n int) {
	f.mu.Lock()
	f.fails[path] = n
	f.mu.Unlock()
}

func (f *flakyTransport) attempts(path string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[path]
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	f.calls[req.URL.Path]++
	n := f.fails[req.URL.Path]
	if n > 0 {
		f.fails[req.URL.Path] = n - 1
	}
	f.mu.Unlock()
	if n > 0 {
		return nil, fmt.Errorf("simulated connection reset")
	}
	return f.inner.RoundTrip(req)
}

// flakyDistributor stands up an in-process distributor behind an HTTP
// server whose client connection drops on demand.
func flakyDistributor(t *testing.T) (*Client, *flakyTransport, *[]time.Duration) {
	t.Helper()
	fleet, err := provider.NewFleet()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p, err := provider.New(provider.Info{
			Name: fmt.Sprintf("p%d", i), PL: privacy.High, CL: privacy.CostLevel(i % 4),
		}, provider.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := fleet.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	dist, err := core.New(core.Config{Fleet: fleet})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewDistributorServer(dist))
	t.Cleanup(srv.Close)
	flaky := newFlakyTransport(srv.Client().Transport)
	client := NewClient(srv.URL, &http.Client{Transport: flaky, Timeout: 10 * time.Second})
	var slept []time.Duration
	client.retry.sleep = func(d time.Duration) { slept = append(slept, d) }
	if err := client.RegisterClient("ann"); err != nil {
		t.Fatal(err)
	}
	if err := client.AddPassword("ann", "pw", privacy.High); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Upload("ann", "pw", "f.txt", []byte("retry me please"), privacy.Low, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	return client, flaky, &slept
}

func TestIdempotentRequestRetriesNetworkErrors(t *testing.T) {
	client, flaky, slept := flakyDistributor(t)
	flaky.failNext("/v1/get_file", netRetries-1)
	got, err := client.GetFile("ann", "pw", "f.txt")
	if err != nil {
		t.Fatalf("GetFile should survive %d dropped connections: %v", netRetries-1, err)
	}
	if string(got) != "retry me please" {
		t.Fatalf("GetFile = %q", got)
	}
	if n := flaky.attempts("/v1/get_file"); n != netRetries {
		t.Fatalf("attempts = %d, want %d", n, netRetries)
	}
	if len(*slept) != netRetries-1 {
		t.Fatalf("backoff sleeps = %d, want %d", len(*slept), netRetries-1)
	}
	// Exponential shape: each delay ∈ [base·2ⁿ, base·2ⁿ+base).
	for n, d := range *slept {
		lo := netRetryBase << uint(n)
		if d < lo || d >= lo+netRetryBase {
			t.Fatalf("backoff[%d] = %v, want [%v, %v)", n, d, lo, lo+netRetryBase)
		}
	}
}

func TestRetryGivesUpAfterBudget(t *testing.T) {
	client, flaky, _ := flakyDistributor(t)
	flaky.failNext("/v1/get_file", netRetries+5)
	if _, err := client.GetFile("ann", "pw", "f.txt"); !isNetworkError(err) {
		t.Fatalf("exhausted retries should surface the network error, got %v", err)
	}
	if n := flaky.attempts("/v1/get_file"); n != netRetries {
		t.Fatalf("attempts = %d, want exactly %d", n, netRetries)
	}
}

func TestMutationsAreNotRetried(t *testing.T) {
	client, flaky, slept := flakyDistributor(t)
	before := map[string]int{}
	for _, path := range []string{"/v1/upload", "/v1/update_chunk", "/v1/remove_file"} {
		before[path] = flaky.attempts(path)
		flaky.failNext(path, 1)
	}
	if _, err := client.Upload("ann", "pw", "g.txt", []byte("x"), privacy.Low, UploadOptions{}); err == nil {
		t.Fatal("upload over a dead connection should fail")
	}
	if err := client.UpdateChunk("ann", "pw", "f.txt", 0, []byte("y")); err == nil {
		t.Fatal("update over a dead connection should fail")
	}
	if err := client.RemoveFile("ann", "pw", "f.txt"); err == nil {
		t.Fatal("remove over a dead connection should fail")
	}
	for _, path := range []string{"/v1/upload", "/v1/update_chunk", "/v1/remove_file"} {
		if n := flaky.attempts(path) - before[path]; n != 1 {
			t.Fatalf("%s attempts = %d, want 1 (mutations must not be replayed)", path, n)
		}
	}
	if len(*slept) != 0 {
		t.Fatalf("mutations slept %d times; retry loop should not engage", len(*slept))
	}
}

func TestServerErrorsAreNotRetried(t *testing.T) {
	client, flaky, slept := flakyDistributor(t)
	if _, err := client.GetFile("ann", "wrong-pw", "f.txt"); !errors.Is(err, core.ErrAuth) {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
	if n := flaky.attempts("/v1/get_file"); n != 1 {
		t.Fatalf("attempts = %d; a served error response must not be retried", n)
	}
	if len(*slept) != 0 {
		t.Fatalf("slept %d times on a non-network error", len(*slept))
	}
}

func TestRemoteProviderRetriesNetworkErrors(t *testing.T) {
	mem, err := provider.New(provider.Info{Name: "flk", PL: privacy.High, CL: 1}, provider.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewProviderServer(mem))
	t.Cleanup(srv.Close)
	flaky := newFlakyTransport(srv.Client().Transport)
	remote, err := DialProvider(srv.URL, &http.Client{Transport: flaky, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	remote.retry.sleep = func(d time.Duration) { slept = append(slept, d) }

	flaky.failNext("/v1/chunks/k", netRetries-1)
	if err := remote.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put should survive dropped connections: %v", err)
	}
	flaky.failNext("/v1/chunks/k", netRetries-1)
	got, err := remote.Get("k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	flaky.failNext("/v1/chunks/k", netRetries-1)
	if err := remote.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if want := 3 * (netRetries - 1); len(slept) != want {
		t.Fatalf("backoff sleeps = %d, want %d", len(slept), want)
	}
	// A served error (404 after delete) must not burn retry budget.
	before := flaky.attempts("/v1/chunks/k")
	if _, err := remote.Get("k"); !errors.Is(err, provider.ErrNotFound) {
		t.Fatalf("Get deleted = %v, want ErrNotFound", err)
	}
	if n := flaky.attempts("/v1/chunks/k"); n != before+1 {
		t.Fatalf("404 retried: %d extra attempts", n-before)
	}
}

func TestProviderHealthOverHTTP(t *testing.T) {
	client, _, _ := flakyDistributor(t)
	provs, err := client.ProviderHealth()
	if err != nil {
		t.Fatal(err)
	}
	if len(provs) != 5 {
		t.Fatalf("providers = %d, want 5", len(provs))
	}
	for _, p := range provs {
		if p.State != "closed" {
			t.Fatalf("provider %q state = %q, want closed", p.Provider, p.State)
		}
		if p.Provider == "" {
			t.Fatal("provider name missing from health view")
		}
	}
	if err := client.Health(); err != nil {
		t.Fatalf("Health = %v", err)
	}
}
