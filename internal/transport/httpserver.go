package transport

import (
	"net/http"
	"time"
)

// NewHTTPServer wraps a handler in an http.Server with conservative
// timeouts so a stalled or malicious peer cannot pin a connection (and
// its goroutine) forever. The write timeout is generous because blob
// transfers can be tens of megabytes over slow links.
func NewHTTPServer(addr string, handler http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       5 * time.Minute,
	}
}
