package transport

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/raid"
)

// This file is the wire form of the streaming data plane. The JSON
// endpoints carry payloads base64-encoded inside a fully buffered body,
// which is the right shape for chunk-sized messages and exactly the
// wrong one for large objects: the client, the server and the JSON
// codec would each hold the whole file, and the transfer caps
// (maxBlobBytes / maxRespRead) bound message size on purpose. The
// stream endpoints instead move raw octets over chunked transfer
// encoding end-to-end — the request body feeds core.UploadStream and
// core.GetFileTo feeds the response writer, so neither side ever
// materializes the file and the whole-body caps do not apply (the file
// path only; every metadata endpoint keeps its cap).
//
// Scalar parameters ride in the query string; the password and the
// optional encryption key ride in base64 headers (X-Password,
// X-Encrypt-Key) so arbitrary bytes survive HTTP header rules and never
// land in server access logs as query noise.

const (
	headerPassword   = "X-Password"
	headerEncryptKey = "X-Encrypt-Key"
)

// ---- Server side ----

func headerB64(r *http.Request, name string) ([]byte, error) {
	v := r.Header.Get(name)
	if v == "" {
		return nil, nil
	}
	b, err := base64.StdEncoding.DecodeString(v)
	if err != nil {
		return nil, fmt.Errorf("bad %s header: %w", name, err)
	}
	return b, nil
}

// streamUpload is POST /v1/stream/upload: the request body is the file.
func (s *DistributorServer) streamUpload(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	pl, err := strconv.Atoi(q.Get("pl"))
	if err != nil {
		http.Error(w, "bad pl: "+err.Error(), http.StatusBadRequest)
		return
	}
	opts := core.UploadOptions{NoParity: q.Get("noParity") == "1"}
	if v := q.Get("assurance"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			http.Error(w, "bad assurance: "+err.Error(), http.StatusBadRequest)
			return
		}
		opts.Assurance = raid.Level(n)
	}
	if v := q.Get("misleadFraction"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			http.Error(w, "bad misleadFraction: "+err.Error(), http.StatusBadRequest)
			return
		}
		opts.MisleadFraction = f
	}
	if v := q.Get("replicas"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			http.Error(w, "bad replicas: "+err.Error(), http.StatusBadRequest)
			return
		}
		opts.Replicas = n
	}
	password, err := headerB64(r, headerPassword)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key, err := headerB64(r, headerEncryptKey)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	opts.EncryptKey = key
	info, err := s.d.UploadStream(q.Get("client"), string(password), q.Get("filename"),
		r.Body, privacy.Level(pl), opts)
	if err != nil {
		http.Error(w, err.Error(), coreStatus(err))
		return
	}
	writeJSON(w, info)
}

// countingWriter tracks whether any payload byte reached the response.
type countingWriter struct {
	w http.ResponseWriter
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// streamFile is GET /v1/stream/file: the response body is the file.
// Chunked transfer encoding carries an implicit end-of-stream marker, so
// a failure after bytes have gone out aborts the connection instead of
// letting a truncated prefix masquerade as a complete body — the client
// observes a transport error, exactly like a mid-body network failure.
func (s *DistributorServer) streamFile(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	password, err := headerB64(r, headerPassword)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cw := &countingWriter{w: w}
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := s.d.GetFileTo(cw, q.Get("client"), string(password), q.Get("filename")); err != nil {
		if cw.n == 0 {
			http.Error(w, err.Error(), coreStatus(err))
			return
		}
		panic(http.ErrAbortHandler)
	}
}

// ---- Client side ----

func (c *Client) streamQuery(client, filename string) url.Values {
	q := url.Values{}
	q.Set("client", client)
	q.Set("filename", filename)
	return q
}

// UploadFrom streams a file to the distributor from r without buffering
// it: the reader feeds the request body directly and the distributor
// commits stripe-by-stripe with bounded memory at both ends. Like every
// mutation, it is never retried at this layer — a body is not rewindable
// and a request that died on the wire may still have been applied.
func (c *Client) UploadFrom(client, password, filename string, r io.Reader, pl privacy.Level, opts UploadOptions) (core.FileInfo, error) {
	q := c.streamQuery(client, filename)
	q.Set("pl", strconv.Itoa(int(pl)))
	if opts.Assurance != 0 {
		q.Set("assurance", strconv.Itoa(int(opts.Assurance)))
	}
	if opts.NoParity {
		q.Set("noParity", "1")
	}
	if opts.MisleadFraction != 0 {
		q.Set("misleadFraction", strconv.FormatFloat(opts.MisleadFraction, 'g', -1, 64))
	}
	if opts.Replicas != 0 {
		q.Set("replicas", strconv.Itoa(opts.Replicas))
	}
	req, err := http.NewRequest(http.MethodPost, c.base+"/v1/stream/upload?"+q.Encode(), r)
	if err != nil {
		return core.FileInfo{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(headerPassword, base64.StdEncoding.EncodeToString([]byte(password)))
	if len(opts.EncryptKey) > 0 {
		req.Header.Set(headerEncryptKey, base64.StdEncoding.EncodeToString(opts.EncryptKey))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return core.FileInfo{}, &netError{fmt.Errorf("transport: /v1/stream/upload: %w", err)}
	}
	defer resp.Body.Close()
	// The response is a small JSON document (FileInfo or an error body),
	// so the usual metadata cap applies here even though the request body
	// was unbounded.
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxRespRead+1))
	if err != nil {
		return core.FileInfo{}, &netError{fmt.Errorf("transport: /v1/stream/upload: %w", err)}
	}
	if int64(len(payload)) > maxRespRead {
		return core.FileInfo{}, fmt.Errorf("%w: /v1/stream/upload: body larger than %d bytes", ErrOversizeResponse, maxRespRead)
	}
	if resp.StatusCode != http.StatusOK {
		return core.FileInfo{}, statusToCoreError(resp.StatusCode, string(payload))
	}
	var info core.FileInfo
	if err := json.Unmarshal(payload, &info); err != nil {
		return core.FileInfo{}, err
	}
	return info, nil
}

// GetFileTo streams a whole file from the distributor into w. The body
// is copied through a fixed-size buffer — deliberately not subject to
// maxRespRead, which caps buffered metadata responses, not the file
// path. A connection abort mid-body (the server's mid-stream failure
// signal) surfaces as an error with the prefix byte count; the transfer
// is not retried, since w has already consumed bytes that a replay would
// duplicate.
func (c *Client) GetFileTo(w io.Writer, client, password, filename string) (int64, error) {
	q := c.streamQuery(client, filename)
	req, err := http.NewRequest(http.MethodGet, c.base+"/v1/stream/file?"+q.Encode(), nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set(headerPassword, base64.StdEncoding.EncodeToString([]byte(password)))
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, &netError{fmt.Errorf("transport: /v1/stream/file: %w", err)}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return 0, statusToCoreError(resp.StatusCode, string(msg))
	}
	n, err := io.Copy(w, resp.Body)
	if err != nil {
		return n, &netError{fmt.Errorf("transport: /v1/stream/file: truncated after %d bytes: %w", n, err)}
	}
	return n, nil
}
