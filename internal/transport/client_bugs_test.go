package transport

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// lowerRespCap shrinks the client-side response cap for one test so an
// oversize body can be served without allocating 64 MiB.
func lowerRespCap(t *testing.T, n int64) {
	t.Helper()
	old := maxRespRead
	maxRespRead = n
	t.Cleanup(func() { maxRespRead = old })
}

// countingHandler serves scripted responses per path and records how
// many attempts each path received.
type countingHandler struct {
	mu    sync.Mutex
	calls map[string]int
	serve func(attempt int, w http.ResponseWriter, r *http.Request)
}

func (h *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	if h.calls == nil {
		h.calls = map[string]int{}
	}
	h.calls[r.URL.Path]++
	n := h.calls[r.URL.Path]
	h.mu.Unlock()
	h.serve(n, w, r)
}

func (h *countingHandler) attempts(path string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.calls[path]
}

func quietClient(t *testing.T, srv *httptest.Server) *Client {
	t.Helper()
	client := NewClient(srv.URL, srv.Client())
	client.retry.sleep = func(time.Duration) {}
	return client
}

// abortMidBody starts a response that claims more bytes than it sends,
// flushes the prefix, then kills the connection — what a connection
// reset mid-transfer looks like from the client side.
func abortMidBody(w http.ResponseWriter, claim, send int) {
	w.Header().Set("Content-Length", fmt.Sprint(claim))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(bytes.Repeat([]byte("x"), send))
	w.(http.Flusher).Flush()
	panic(http.ErrAbortHandler)
}

func TestOversizeResponseIsExplicitError(t *testing.T) {
	lowerRespCap(t, 4096)
	h := &countingHandler{serve: func(_ int, w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write(make([]byte, 5000))
	}}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	client := quietClient(t, srv)

	_, err := client.GetFile("c", "pw", "f")
	if !errors.Is(err, ErrOversizeResponse) {
		t.Fatalf("GetFile over cap = %v, want ErrOversizeResponse", err)
	}
	if isNetworkError(err) {
		t.Fatal("oversize response classified as retriable network error")
	}
	if n := h.attempts("/v1/get_file"); n != 1 {
		t.Fatalf("oversize response retried: %d attempts", n)
	}
}

func TestOversizeResponseExactCapStillSucceeds(t *testing.T) {
	lowerRespCap(t, 4096)
	h := &countingHandler{serve: func(_ int, w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write(make([]byte, 4096))
	}}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	got, err := quietClient(t, srv).GetFile("c", "pw", "f")
	if err != nil || len(got) != 4096 {
		t.Fatalf("GetFile at exactly the cap = %d bytes, %v", len(got), err)
	}
}

func TestGetJSONOversizeResponseIsExplicitError(t *testing.T) {
	lowerRespCap(t, 2048)
	h := &countingHandler{serve: func(_ int, w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write(make([]byte, 3000))
	}}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	_, err := quietClient(t, srv).Stats()
	if !errors.Is(err, ErrOversizeResponse) {
		t.Fatalf("Stats over cap = %v, want ErrOversizeResponse", err)
	}
	if n := h.attempts("/v1/stats"); n != 1 {
		t.Fatalf("oversize response retried: %d attempts", n)
	}
}

func TestIdempotentPostRetriesMidBodyReset(t *testing.T) {
	want := bytes.Repeat([]byte("payload!"), 512)
	h := &countingHandler{serve: func(attempt int, w http.ResponseWriter, _ *http.Request) {
		if attempt == 1 {
			abortMidBody(w, len(want), len(want)/4)
		}
		_, _ = w.Write(want)
	}}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	got, err := quietClient(t, srv).GetFile("c", "pw", "f")
	if err != nil {
		t.Fatalf("GetFile should survive one mid-body reset: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("GetFile after retry = %d bytes, want %d", len(got), len(want))
	}
	if n := h.attempts("/v1/get_file"); n != 2 {
		t.Fatalf("attempts = %d, want 2", n)
	}
}

func TestGetJSONRetriesMidBodyReset(t *testing.T) {
	h := &countingHandler{serve: func(attempt int, w http.ResponseWriter, _ *http.Request) {
		if attempt == 1 {
			abortMidBody(w, 1000, 100)
		}
		_ = json.NewEncoder(w).Encode(core.Stats{Chunks: 7})
	}}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	stats, err := quietClient(t, srv).Stats()
	if err != nil {
		t.Fatalf("Stats should survive one mid-body reset: %v", err)
	}
	if stats.Chunks != 7 {
		t.Fatalf("Stats after retry = %+v", stats)
	}
	if n := h.attempts("/v1/stats"); n != 2 {
		t.Fatalf("attempts = %d, want 2", n)
	}
}

func TestGetJSONMidBodyResetExhaustsBudget(t *testing.T) {
	h := &countingHandler{serve: func(_ int, w http.ResponseWriter, _ *http.Request) {
		abortMidBody(w, 1000, 100)
	}}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	_, err := quietClient(t, srv).Stats()
	if !isNetworkError(err) {
		t.Fatalf("exhausted retries should surface the transport error, got %v", err)
	}
	if n := h.attempts("/v1/stats"); n != netRetries {
		t.Fatalf("attempts = %d, want %d", n, netRetries)
	}
}

func TestMutationMidBodyResetIsNotRetried(t *testing.T) {
	h := &countingHandler{serve: func(_ int, w http.ResponseWriter, _ *http.Request) {
		abortMidBody(w, 1000, 100)
	}}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	err := quietClient(t, srv).UpdateChunk("c", "pw", "f", 0, []byte("y"))
	if err == nil {
		t.Fatal("mid-body reset on a mutation should fail")
	}
	if !isNetworkError(err) {
		t.Fatalf("mid-body reset should classify as transport failure, got %v", err)
	}
	if n := h.attempts("/v1/update_chunk"); n != 1 {
		t.Fatalf("attempts = %d; a mutation must not be replayed", n)
	}
}
