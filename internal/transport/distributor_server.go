package transport

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/raid"
)

// DistributorServer exposes a Cloud Data Distributor over HTTP — the
// surface clients use ("Clients do not interact with Cloud Providers
// directly rather via Cloud Data Distributor").
type DistributorServer struct {
	d   *core.Distributor
	mux *http.ServeMux
	// lagSource, when set, contributes the replication section of
	// /v1/health (see SetLagSource).
	lagSource func() []core.ReplicaLag
}

// NewDistributorServer wraps a distributor.
func NewDistributorServer(d *core.Distributor) *DistributorServer {
	s := &DistributorServer{d: d, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/clients", s.registerClient)
	s.mux.HandleFunc("POST /v1/passwords", s.addPassword)
	s.mux.HandleFunc("POST /v1/upload", s.upload)
	s.mux.HandleFunc("POST /v1/get_chunk", s.getChunk)
	s.mux.HandleFunc("POST /v1/get_file", s.getFile)
	s.mux.HandleFunc("POST /v1/get_snapshot", s.getSnapshot)
	s.mux.HandleFunc("POST /v1/update_chunk", s.updateChunk)
	s.mux.HandleFunc("POST /v1/remove_chunk", s.removeChunk)
	s.mux.HandleFunc("POST /v1/remove_file", s.removeFile)
	s.mux.HandleFunc("POST /v1/chunk_count", s.chunkCount)
	s.mux.HandleFunc("GET /v1/tables/providers", s.providerTable)
	s.mux.HandleFunc("GET /v1/tables/clients", s.clientTable)
	s.mux.HandleFunc("GET /v1/tables/chunks", s.chunkTable)
	s.mux.HandleFunc("POST /v1/get_range", s.getRange)
	s.mux.HandleFunc("POST /v1/stream/upload", s.streamUpload)
	s.mux.HandleFunc("GET /v1/stream/file", s.streamFile)
	s.mux.HandleFunc("POST /v1/admin/scrub", s.scrub)
	s.mux.HandleFunc("POST /v1/admin/decommission", s.decommission)
	s.mux.HandleFunc("GET /v1/stats", s.stats)
	s.mux.HandleFunc("GET /v1/metrics", s.metrics)
	s.mux.HandleFunc("GET /v1/health", s.health)
	return s
}

// ServeHTTP implements http.Handler.
func (s *DistributorServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// coreStatus maps distributor errors onto HTTP statuses; the client maps
// them back, so error identity survives the wire.
func coreStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrAuth):
		return http.StatusForbidden
	case errors.Is(err, core.ErrNoSuchFile), errors.Is(err, core.ErrNoSuchChunk), errors.Is(err, core.ErrNoSnapshot):
		return http.StatusNotFound
	case errors.Is(err, core.ErrExists), errors.Is(err, core.ErrConflict):
		return http.StatusConflict
	case errors.Is(err, core.ErrRange):
		return http.StatusRequestedRangeNotSatisfiable
	case errors.Is(err, core.ErrPlacement):
		return http.StatusInsufficientStorage
	case errors.Is(err, core.ErrUnavailable), errors.Is(err, core.ErrCircuitOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, core.ErrConfig):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func decode[T any](w http.ResponseWriter, r *http.Request) (T, bool) {
	var v T
	if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return v, false
	}
	return v, true
}

// Wire DTOs. Data travels base64-encoded via encoding/json's []byte rule.

type clientReq struct {
	Name string `json:"name"`
}

type passwordReq struct {
	Client   string `json:"client"`
	Password string `json:"password"`
	PL       int    `json:"pl"`
}

type uploadReq struct {
	Client          string  `json:"client"`
	Password        string  `json:"password"`
	Filename        string  `json:"filename"`
	PL              int     `json:"pl"`
	Data            []byte  `json:"data"`
	Assurance       int     `json:"assurance,omitempty"`
	NoParity        bool    `json:"noParity,omitempty"`
	MisleadFraction float64 `json:"misleadFraction,omitempty"`
	// MisleadLines are whole decoy records to blend into the chunks
	// (core.UploadOptions.MisleadLines); []byte marshals as base64.
	MisleadLines [][]byte `json:"misleadLines,omitempty"`
	Replicas     int      `json:"replicas,omitempty"`
	EncryptKey   []byte   `json:"encryptKey,omitempty"`
}

type chunkReq struct {
	Client   string `json:"client"`
	Password string `json:"password"`
	Filename string `json:"filename"`
	Serial   int    `json:"serial"`
	Data     []byte `json:"data,omitempty"` // update_chunk only
}

type fileReq struct {
	Client   string `json:"client"`
	Password string `json:"password"`
	Filename string `json:"filename"`
}

func (s *DistributorServer) registerClient(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[clientReq](w, r)
	if !ok {
		return
	}
	if err := s.d.RegisterClient(req.Name); err != nil {
		http.Error(w, err.Error(), coreStatus(err))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *DistributorServer) addPassword(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[passwordReq](w, r)
	if !ok {
		return
	}
	if err := s.d.AddPassword(req.Client, req.Password, privacy.Level(req.PL)); err != nil {
		http.Error(w, err.Error(), coreStatus(err))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *DistributorServer) upload(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[uploadReq](w, r)
	if !ok {
		return
	}
	info, err := s.d.Upload(req.Client, req.Password, req.Filename, req.Data, privacy.Level(req.PL), core.UploadOptions{
		Assurance:       raid.Level(req.Assurance),
		NoParity:        req.NoParity,
		MisleadFraction: req.MisleadFraction,
		MisleadLines:    req.MisleadLines,
		Replicas:        req.Replicas,
		EncryptKey:      req.EncryptKey,
	})
	if err != nil {
		http.Error(w, err.Error(), coreStatus(err))
		return
	}
	writeJSON(w, info)
}

func (s *DistributorServer) getChunk(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[chunkReq](w, r)
	if !ok {
		return
	}
	data, err := s.d.GetChunk(req.Client, req.Password, req.Filename, req.Serial)
	if err != nil {
		http.Error(w, err.Error(), coreStatus(err))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (s *DistributorServer) getFile(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[fileReq](w, r)
	if !ok {
		return
	}
	data, err := s.d.GetFile(req.Client, req.Password, req.Filename)
	if err != nil {
		http.Error(w, err.Error(), coreStatus(err))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (s *DistributorServer) getSnapshot(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[chunkReq](w, r)
	if !ok {
		return
	}
	data, err := s.d.GetSnapshot(req.Client, req.Password, req.Filename, req.Serial)
	if err != nil {
		http.Error(w, err.Error(), coreStatus(err))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (s *DistributorServer) updateChunk(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[chunkReq](w, r)
	if !ok {
		return
	}
	if err := s.d.UpdateChunk(req.Client, req.Password, req.Filename, req.Serial, req.Data, core.UploadOptions{}); err != nil {
		http.Error(w, err.Error(), coreStatus(err))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *DistributorServer) removeChunk(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[chunkReq](w, r)
	if !ok {
		return
	}
	if err := s.d.RemoveChunk(req.Client, req.Password, req.Filename, req.Serial); err != nil {
		http.Error(w, err.Error(), coreStatus(err))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *DistributorServer) removeFile(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[fileReq](w, r)
	if !ok {
		return
	}
	if err := s.d.RemoveFile(req.Client, req.Password, req.Filename); err != nil {
		http.Error(w, err.Error(), coreStatus(err))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *DistributorServer) chunkCount(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[fileReq](w, r)
	if !ok {
		return
	}
	n, err := s.d.ChunkCount(req.Client, req.Password, req.Filename)
	if err != nil {
		http.Error(w, err.Error(), coreStatus(err))
		return
	}
	writeJSON(w, map[string]int{"chunks": n})
}

type rangeReq struct {
	Client   string `json:"client"`
	Password string `json:"password"`
	Filename string `json:"filename"`
	Offset   int    `json:"offset"`
	Length   int    `json:"length"`
}

func (s *DistributorServer) getRange(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[rangeReq](w, r)
	if !ok {
		return
	}
	data, err := s.d.GetRange(req.Client, req.Password, req.Filename, req.Offset, req.Length)
	if err != nil {
		http.Error(w, err.Error(), coreStatus(err))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (s *DistributorServer) scrub(w http.ResponseWriter, _ *http.Request) {
	rep, err := s.d.Scrub()
	if err != nil {
		http.Error(w, err.Error(), coreStatus(err))
		return
	}
	writeJSON(w, rep)
}

type decommissionReq struct {
	ProviderIndex int `json:"providerIndex"`
}

func (s *DistributorServer) decommission(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[decommissionReq](w, r)
	if !ok {
		return
	}
	rep, err := s.d.Decommission(req.ProviderIndex)
	if err != nil {
		http.Error(w, err.Error(), coreStatus(err))
		return
	}
	writeJSON(w, rep)
}

func (s *DistributorServer) providerTable(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.d.ProviderTable())
}

func (s *DistributorServer) clientTable(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.d.ClientTable())
}

func (s *DistributorServer) chunkTable(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.d.ChunkTable())
}

func (s *DistributorServer) stats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.d.Stats())
}

func (s *DistributorServer) metrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.d.Metrics())
}

// HealthReport is the GET /v1/health body: overall status, the
// per-provider circuit-breaker view, the chunk-cache counters
// (hits/misses/evictions/bytes; capacity 0 means caching is disabled),
// the durability view (records appended, fsyncs, replay count and
// last-checkpoint age; enabled=false means in-memory metadata), and —
// when this distributor fronts a replicated cluster — each member's
// replication position, so a lagging or down secondary is visible
// instead of silently serving stale generations.
type HealthReport struct {
	Status      string                `json:"status"`
	Providers   []core.ProviderHealth `json:"providers"`
	Cache       core.CacheStats       `json:"cache"`
	WAL         core.WALHealth        `json:"wal"`
	Replication []core.ReplicaLag     `json:"replication,omitempty"`
}

// SetLagSource wires a replication-lag reporter (typically
// core.Cluster.Lag) into /v1/health. Call before serving; a nil fn
// removes the section.
func (s *DistributorServer) SetLagSource(fn func() []core.ReplicaLag) {
	s.lagSource = fn
}

func (s *DistributorServer) health(w http.ResponseWriter, _ *http.Request) {
	provs := s.d.Health()
	status := "ok"
	for _, p := range provs {
		if p.State != "closed" {
			status = "degraded"
			break
		}
	}
	rep := HealthReport{Status: status, Providers: provs, Cache: s.d.CacheHealth(), WAL: s.d.WALHealth()}
	if s.lagSource != nil {
		rep.Replication = s.lagSource()
		for _, m := range rep.Replication {
			if m.Down || m.LagRecords > 0 {
				rep.Status = "degraded"
			}
		}
	}
	writeJSON(w, rep)
}
