package transport

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/provider"
)

// shardFixture serves n independent distributors — each with its own
// provider fleet — and returns a System routing across them.
func shardFixture(t *testing.T, shards, provsPerShard int) (*System, []*core.Distributor) {
	t.Helper()
	urls := make([]string, shards)
	dists := make([]*core.Distributor, shards)
	for s := 0; s < shards; s++ {
		fleet, err := provider.NewFleet()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < provsPerShard; i++ {
			mem, err := provider.New(provider.Info{
				Name: fmt.Sprintf("s%dp%d", s, i), PL: privacy.High, CL: 1,
			}, provider.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := fleet.Add(mem); err != nil {
				t.Fatal(err)
			}
		}
		dist, err := core.New(core.Config{Fleet: fleet, Secret: []byte{byte(s + 1)}})
		if err != nil {
			t.Fatal(err)
		}
		dists[s] = dist
		srv := httptest.NewServer(NewDistributorServer(dist))
		t.Cleanup(srv.Close)
		urls[s] = srv.URL
	}
	sys, err := NewSystem(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sys, dists
}

// TestSystemRoutesFilesToOwningShard pins the routing contract: every
// file lands on exactly the shard Locate names, account state exists on
// every shard, and all files remain readable through the System.
func TestSystemRoutesFilesToOwningShard(t *testing.T) {
	sys, dists := shardFixture(t, 3, 4)
	if err := sys.RegisterClient("alice"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddPassword("alice", "pw", privacy.High); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	files := map[string][]byte{}
	owners := map[string]int{}
	for i := 0; i < 24; i++ {
		name := fmt.Sprintf("doc-%03d.txt", i)
		data := make([]byte, 600+rng.Intn(900))
		rng.Read(data)
		files[name] = data
		if _, err := sys.Upload("alice", "pw", name, data, privacy.High, UploadOptions{}); err != nil {
			t.Fatalf("upload %s: %v", name, err)
		}
		loc, err := sys.Locate("alice", name)
		if err != nil {
			t.Fatal(err)
		}
		owners[name] = loc.Shard
	}
	// The namespace must actually spread: with 24 files on 3 shards, an
	// empty shard would mean the router is degenerate.
	counts := make([]int, 3)
	for _, s := range owners {
		counts[s]++
	}
	for s, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d owns no files; histogram %v", s, counts)
		}
	}

	for name, want := range files {
		got, err := sys.GetFile("alice", "pw", name)
		if err != nil {
			t.Fatalf("get %s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("file %s corrupted through system", name)
		}
		// Only the owning shard holds the file's metadata.
		for s := range dists {
			_, err := sys.Shard(s).ChunkCount("alice", "pw", name)
			if s == owners[name] && err != nil {
				t.Fatalf("owner shard %d missing %s: %v", s, name, err)
			}
			if s != owners[name] && err == nil {
				t.Fatalf("shard %d unexpectedly holds %s (owner %d)", s, name, owners[name])
			}
		}
	}

	// Aggregate stats must account for every file exactly once.
	st, err := sys.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != len(files) {
		t.Fatalf("aggregate Files = %d, want %d", st.Files, len(files))
	}
	if st.Clients != 1 {
		t.Fatalf("aggregate Clients = %d, want 1", st.Clients)
	}
	if len(st.PerProvider) != 3*4 {
		t.Fatalf("PerProvider length %d, want 12", len(st.PerProvider))
	}
}

// TestSystemLocateIsStable pins that routing depends only on the URL
// set, not its order — restarts with a reshuffled config must not
// repartition the namespace.
func TestSystemLocateIsStable(t *testing.T) {
	urls := []string{"http://a:1", "http://b:2", "http://c:3"}
	sysA, err := NewSystem(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := []string{"http://c:3", "http://a:1", "http://b:2"}
	sysB, err := NewSystem(shuffled, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("f%d", i)
		a, err := sysA.Locate("u", name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sysB.Locate("u", name)
		if err != nil {
			t.Fatal(err)
		}
		if a.ShardURL != b.ShardURL {
			t.Fatalf("file %s: owner %s under one order, %s under another", name, a.ShardURL, b.ShardURL)
		}
	}
	if _, err := NewSystem([]string{"http://a:1", "http://a:1"}, nil); err == nil {
		t.Fatal("duplicate shard URLs accepted")
	}
}

// TestShardProxyServesSingleDistributorProtocol drives the proxy with a
// plain Client: the whole single-distributor wire surface — JSON ops,
// streaming, stats, scrub, health — must work unchanged against a
// sharded backend.
func TestShardProxyServesSingleDistributorProtocol(t *testing.T) {
	sys, _ := shardFixture(t, 3, 4)
	proxy := httptest.NewServer(NewShardProxy(sys))
	t.Cleanup(proxy.Close)
	cl := NewClient(proxy.URL, proxy.Client())

	if err := cl.RegisterClient("bob"); err != nil {
		t.Fatal(err)
	}
	if err := cl.AddPassword("bob", "pw", privacy.High); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	files := map[string][]byte{}
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("px-%02d.bin", i)
		data := make([]byte, 900+rng.Intn(600))
		rng.Read(data)
		files[name] = data
		if _, err := cl.Upload("bob", "pw", name, data, privacy.High, UploadOptions{}); err != nil {
			t.Fatalf("upload via proxy: %v", err)
		}
	}
	for name, want := range files {
		got, err := cl.GetFile("bob", "pw", name)
		if err != nil {
			t.Fatalf("get via proxy: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("file %s corrupted through proxy", name)
		}
	}

	// Streaming endpoints forward to the owning shard.
	big := make([]byte, 150_000)
	rng.Read(big)
	if _, err := cl.UploadFrom("bob", "pw", "stream.bin", bytes.NewReader(big), privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatalf("stream upload via proxy: %v", err)
	}
	var out bytes.Buffer
	n, err := cl.GetFileTo(&out, "bob", "pw", "stream.bin")
	if err != nil {
		t.Fatalf("stream download via proxy: %v", err)
	}
	if n != int64(len(big)) || !bytes.Equal(out.Bytes(), big) {
		t.Fatalf("streamed file corrupted through proxy (%d of %d bytes)", n, len(big))
	}

	// Chunk-level ops route to the same owner the upload picked.
	nChunks, err := cl.ChunkCount("bob", "pw", "px-00.bin")
	if err != nil || nChunks < 1 {
		t.Fatalf("chunk_count via proxy: n=%d err=%v", nChunks, err)
	}
	chunk, err := cl.GetChunk("bob", "pw", "px-00.bin", 0)
	if err != nil || len(chunk) == 0 {
		t.Fatalf("get_chunk via proxy: %v", err)
	}
	if err := cl.RemoveFile("bob", "pw", "px-11.bin"); err != nil {
		t.Fatalf("remove via proxy: %v", err)
	}
	if _, err := cl.GetFile("bob", "pw", "px-11.bin"); err == nil {
		t.Fatal("removed file still readable via proxy")
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 12 { // 12 small + stream - removed
		t.Fatalf("stats via proxy: Files = %d, want 12", st.Files)
	}
	if _, err := cl.Scrub(); err != nil {
		t.Fatalf("scrub via proxy: %v", err)
	}
	if err := cl.Health(); err != nil {
		t.Fatalf("health via proxy: %v", err)
	}

	// Errors keep their identity through two hops: client → proxy → shard.
	if _, err := cl.GetFile("bob", "wrong", "px-00.bin"); err == nil || !strings.Contains(err.Error(), "denied") {
		t.Fatalf("want access-denied through proxy, got %v", err)
	}

	// /v1/locate agrees with client-side routing.
	resp, err := proxy.Client().Get(proxy.URL + "/v1/locate?client=bob&filename=px-00.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("locate status %d", resp.StatusCode)
	}
	var loc Location
	if err := json.NewDecoder(resp.Body).Decode(&loc); err != nil {
		t.Fatal(err)
	}
	want, err := sys.Locate("bob", "px-00.bin")
	if err != nil {
		t.Fatal(err)
	}
	if loc != want {
		t.Fatalf("proxy locate %+v != system locate %+v", loc, want)
	}
}

// TestHealthReportsReplicationLag wires a replicated cluster's lag feed
// into the health endpoint and checks that a down, lagging secondary
// flips status to degraded and shows its record deficit on the wire.
func TestHealthReportsReplicationLag(t *testing.T) {
	fleet, err := provider.NewFleet()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		mem, err := provider.New(provider.Info{
			Name: fmt.Sprintf("h%d", i), PL: privacy.High, CL: 1,
		}, provider.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := fleet.Add(mem); err != nil {
			t.Fatal(err)
		}
	}
	var dists []*core.Distributor
	for i := 0; i < 2; i++ {
		d, err := core.New(core.Config{Fleet: fleet, Secret: []byte{byte(i + 1)}})
		if err != nil {
			t.Fatal(err)
		}
		dists = append(dists, d)
	}
	cluster, err := core.NewCluster(dists...)
	if err != nil {
		t.Fatal(err)
	}

	ds := NewDistributorServer(dists[0])
	ds.SetLagSource(cluster.Lag)
	srv := httptest.NewServer(ds)
	t.Cleanup(srv.Close)
	cl := NewClient(srv.URL, srv.Client())

	if err := cluster.RegisterClient("eve"); err != nil {
		t.Fatal(err)
	}
	rep, err := cl.HealthReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != "ok" {
		t.Fatalf("healthy cluster reported %q", rep.Status)
	}
	if len(rep.Replication) != 2 {
		t.Fatalf("want 2 replication rows, got %d", len(rep.Replication))
	}

	// Down the secondary and write: lag becomes visible and degrading.
	if err := cluster.SetDown(1, true); err != nil {
		t.Fatal(err)
	}
	if err := cluster.AddPassword("eve", "pw", privacy.High); err != nil {
		t.Fatal(err)
	}
	rep, err = cl.HealthReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != "degraded" {
		t.Fatalf("lagging cluster reported %q, want degraded", rep.Status)
	}
	var sec *core.ReplicaLag
	for i := range rep.Replication {
		if rep.Replication[i].Role == "secondary" {
			sec = &rep.Replication[i]
		}
	}
	if sec == nil {
		t.Fatal("no secondary row in health report")
	}
	if !sec.Down || sec.LagRecords == 0 {
		t.Fatalf("secondary row %+v: want down with positive lag", *sec)
	}

	// Heal: SetDown(false) catches the secondary up; health recovers.
	if err := cluster.SetDown(1, false); err != nil {
		t.Fatal(err)
	}
	rep, err = cl.HealthReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != "ok" {
		t.Fatalf("healed cluster reported %q", rep.Status)
	}
	for _, r := range rep.Replication {
		if r.LagRecords != 0 || r.Down {
			t.Fatalf("healed row still lagging: %+v", r)
		}
	}
}
