package transport

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/provider"
)

// gatedShard serves one distributor behind a switchable 503 gate — a
// shard that is "down" (every request refused) until the gate opens,
// without tearing the listener down, so the System's cached URL keeps
// pointing at the same place across the outage.
type gatedShard struct {
	down atomic.Bool
	next http.Handler
}

func (g *gatedShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.down.Load() {
		http.Error(w, "shard down for maintenance", http.StatusServiceUnavailable)
		return
	}
	g.next.ServeHTTP(w, r)
}

// crossShardFixture is a 2-shard System where shard 1 sits behind a
// gate the test can toggle.
func crossShardFixture(t *testing.T) (*System, *gatedShard) {
	t.Helper()
	urls := make([]string, 2)
	var gate *gatedShard
	for s := 0; s < 2; s++ {
		fleet, err := provider.NewFleet()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			mem, err := provider.New(provider.Info{
				Name: fmt.Sprintf("s%dp%d", s, i), PL: privacy.High, CL: 1,
			}, provider.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := fleet.Add(mem); err != nil {
				t.Fatal(err)
			}
		}
		dist, err := core.New(core.Config{Fleet: fleet, Secret: []byte{byte(s + 1)}})
		if err != nil {
			t.Fatal(err)
		}
		var h http.Handler = NewDistributorServer(dist)
		if s == 1 {
			gate = &gatedShard{next: h}
			h = gate
		}
		srv := httptest.NewServer(h)
		t.Cleanup(srv.Close)
		urls[s] = srv.URL
	}
	sys, err := NewSystem(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sys, gate
}

// TestSystemRegisterReportsFailingShardAndRepairsIdempotently pins the
// cross-shard registration contract (ROADMAP's "cross-shard operations"
// gap, as a test instead of folklore):
//
//  1. when the account fan-out partially fails, the error names exactly
//     the shard that missed the mutation (index and URL), and
//  2. re-issuing the same call once the shard is back heals the
//     partial state — shards that already registered the client or
//     password acknowledge idempotently instead of failing the repair
//     with "already exists".
func TestSystemRegisterReportsFailingShardAndRepairsIdempotently(t *testing.T) {
	sys, gate := crossShardFixture(t)
	gate.down.Store(true)

	err := sys.RegisterClient("ann")
	if err == nil {
		t.Fatal("RegisterClient with shard 1 down: want error, got nil")
	}
	if !strings.Contains(err.Error(), "shard 1 (") {
		t.Fatalf("fan-out error does not name the failing shard: %v", err)
	}
	if strings.Contains(err.Error(), "shard 0 (") {
		t.Fatalf("fan-out error blames the healthy shard too: %v", err)
	}

	// The password fan-out hits the same wall and names the same shard.
	if err := sys.AddPassword("ann", "pw", privacy.High); err == nil ||
		!strings.Contains(err.Error(), "shard 1 (") {
		t.Fatalf("AddPassword with shard 1 down: want shard-1 error, got %v", err)
	}

	// Shard 1 recovers; the repair is simply re-issuing the calls.
	// Shard 0 already holds the account and password — the re-issue
	// must treat that as success, not ErrExists.
	gate.down.Store(false)
	if err := sys.RegisterClient("ann"); err != nil {
		t.Fatalf("re-issued RegisterClient after recovery: %v", err)
	}
	if err := sys.AddPassword("ann", "pw", privacy.High); err != nil {
		t.Fatalf("re-issued AddPassword after recovery: %v", err)
	}

	// The healed namespace serves uploads wherever they hash: place
	// enough files that both shards own at least one.
	placed := map[int]int{}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("file-%d.txt", i)
		if _, err := sys.Upload("ann", "pw", name, []byte("payload"), privacy.High, UploadOptions{}); err != nil {
			t.Fatalf("upload %s after repair: %v", name, err)
		}
		loc, err := sys.Locate("ann", name)
		if err != nil {
			t.Fatal(err)
		}
		placed[loc.Shard]++
	}
	if len(placed) < 2 {
		t.Fatalf("uploads all landed on one shard (%v); repair untested on the recovered shard", placed)
	}

	// A genuinely duplicate password re-add remains idempotent too —
	// the goal state ⟨password, PL⟩ is present on every shard.
	if err := sys.AddPassword("ann", "pw", privacy.High); err != nil {
		t.Fatalf("duplicate AddPassword: %v", err)
	}
}
