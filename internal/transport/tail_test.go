package transport

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/privacy"
	"repro/internal/provider"
)

// TestRemoteProviderGetOversizeError pins the truncation guard: a blob
// body larger than the transfer cap must surface as an explicit error,
// never as silently cut-off bytes that would fail a checksum far away.
func TestRemoteProviderGetOversizeError(t *testing.T) {
	saved := maxBlobRead
	maxBlobRead = 1 << 10
	t.Cleanup(func() { maxBlobRead = saved })

	mem, remote := newProviderPair(t, provider.Info{Name: "N", PL: privacy.High, CL: 1})
	if err := mem.Put("big", bytes.Repeat([]byte{7}, 2<<10)); err != nil {
		t.Fatal(err)
	}
	data, err := remote.Get("big")
	if err == nil {
		t.Fatalf("Get oversize blob: returned %d bytes, want error", len(data))
	}
	if !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("Get oversize blob: err = %v, want byte-limit error", err)
	}
	// A blob exactly at the cap still round-trips.
	if err := mem.Put("fit", bytes.Repeat([]byte{8}, 1<<10)); err != nil {
		t.Fatal(err)
	}
	got, err := remote.Get("fit")
	if err != nil || len(got) != 1<<10 {
		t.Fatalf("Get at-cap blob: %d bytes, err=%v", len(got), err)
	}
}

// TestDrainPreservesKeepAlive pins the drain fix: error responses with
// multi-kilobyte bodies must be read to EOF so the connection stays
// reusable — before the fix anything past 4 KiB poisoned keep-alive and
// every provider error cost a fresh TCP connection.
func TestDrainPreservesKeepAlive(t *testing.T) {
	bigBody := bytes.Repeat([]byte{'e'}, 8<<10)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/info", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(infoDTO{Name: "E", PL: 3, CL: 1})
	})
	mux.HandleFunc("/v1/chunks/", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		w.Write(bigBody)
	})
	srv := httptest.NewUnstartedServer(mux)
	var conns atomic.Int64
	srv.Config.ConnState = func(_ net.Conn, s http.ConnState) {
		if s == http.StateNew {
			conns.Add(1)
		}
	}
	srv.Start()
	t.Cleanup(srv.Close)

	remote, err := DialProvider(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Put("k", []byte("v")); err == nil {
		t.Fatal("Put against erroring server: want error")
	}
	warm := conns.Load()
	for i := 0; i < 4; i++ {
		if err := remote.Put("k", []byte("v")); err == nil {
			t.Fatal("Put against erroring server: want error")
		}
	}
	if got := conns.Load(); got != warm {
		t.Fatalf("4 error responses opened %d new connections, want 0 (bodies not drained)", got-warm)
	}
}

// TestDownProbeDeadline pins the probe's own deadline: against a stalled
// provider the health check must answer "down" in about a second, not
// after the 10s blob-transfer timeout it used to inherit.
func TestDownProbeDeadline(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/info", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(infoDTO{Name: "S", PL: 3, CL: 1})
	})
	mux.HandleFunc("/v1/health", func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // stall until the probe gives up
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	remote, err := DialProvider(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if !remote.Down() {
		t.Fatal("stalled provider reported as up")
	}
	if elapsed := time.Since(start); elapsed < probeTimeout/2 || elapsed > 5*probeTimeout {
		t.Fatalf("probe took %v, want about %v", elapsed, probeTimeout)
	}
}
