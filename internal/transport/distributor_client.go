package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/raid"
)

// Client is a Go client for a DistributorServer — what an application
// links against instead of talking to cloud providers directly.
// Idempotent requests (reads, table fetches) are retried with jittered
// exponential backoff on network errors; mutations are never retried at
// this layer, since a request that died on the wire may still have been
// applied.
type Client struct {
	base  string
	http  *http.Client
	retry *retrier
}

// NewClient creates a distributor client. A nil hc gets a default
// client backed by the shared pooled transport (see pool.go), so warm
// connections survive bursts instead of re-dialing.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = defaultHTTPClient(30 * time.Second)
	}
	return &Client{
		base:  strings.TrimRight(baseURL, "/"),
		http:  hc,
		retry: newRetrier(),
	}
}

// statusToCoreError reverses the server's error mapping so callers can use
// errors.Is against the core error values across the wire.
func statusToCoreError(status int, msg string) error {
	msg = strings.TrimSpace(msg)
	switch status {
	case http.StatusForbidden:
		return fmt.Errorf("%w: %s", core.ErrAuth, msg)
	case http.StatusNotFound:
		if strings.Contains(msg, "snapshot") {
			return fmt.Errorf("%w: %s", core.ErrNoSnapshot, msg)
		}
		if strings.Contains(msg, "chunk") || strings.Contains(msg, "serial") {
			return fmt.Errorf("%w: %s", core.ErrNoSuchChunk, msg)
		}
		return fmt.Errorf("%w: %s", core.ErrNoSuchFile, msg)
	case http.StatusConflict:
		if strings.Contains(msg, "concurrent") {
			return fmt.Errorf("%w: %s", core.ErrConflict, msg)
		}
		return fmt.Errorf("%w: %s", core.ErrExists, msg)
	case http.StatusRequestedRangeNotSatisfiable:
		return fmt.Errorf("%w: %s", core.ErrRange, msg)
	case http.StatusInsufficientStorage:
		return fmt.Errorf("%w: %s", core.ErrPlacement, msg)
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%w: %s", core.ErrUnavailable, msg)
	case http.StatusBadRequest:
		return fmt.Errorf("%w: %s", core.ErrConfig, msg)
	default:
		return fmt.Errorf("transport: distributor status %d: %s", status, msg)
	}
}

// post sends a JSON body once and returns the raw response payload.
func (c *Client) post(path string, req any) ([]byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return c.postOnce(path, body)
}

// ErrOversizeResponse marks a response body that reached the transfer
// size bound. Before this check existed the client silently truncated
// such a body at maxBlobBytes and handed it back as a success, which
// surfaced later as an inexplicable length or checksum mismatch far
// from the cause.
var ErrOversizeResponse = errors.New("transport: response exceeds size limit")

// maxRespRead bounds how much of a distributor response body the client
// will accept. It is a variable (normally maxBlobBytes) only so tests
// can lower it without serving a 64 MiB body.
var maxRespRead int64 = maxBlobBytes

// netError marks a failure at the transport layer — either the request
// never produced an HTTP response, or the response died mid-body after
// the server had already executed the request. Only layers that know
// the call is idempotent may retry on it.
type netError struct{ err error }

func (e *netError) Error() string { return e.err.Error() }
func (e *netError) Unwrap() error { return e.err }

// isNetworkError reports whether err came from the transport itself (no
// HTTP response at all) rather than from a server status.
func isNetworkError(err error) bool {
	var ne *netError
	return errors.As(err, &ne)
}

func (c *Client) postOnce(path string, body []byte) ([]byte, error) {
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, &netError{fmt.Errorf("transport: %s: %w", path, err)}
	}
	defer resp.Body.Close()
	// Read one byte past the cap: a body that reaches it was truncated,
	// and must fail loudly instead of being returned as a success.
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxRespRead+1))
	if err != nil {
		// The response died mid-body (connection reset, timeout). The
		// server already executed the request, so surface it as a
		// transport failure and let the idempotent layers retry it.
		return nil, &netError{fmt.Errorf("transport: %s: %w", path, err)}
	}
	if int64(len(payload)) > maxRespRead {
		return nil, fmt.Errorf("%w: %s: body larger than %d bytes", ErrOversizeResponse, path, maxRespRead)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return nil, statusToCoreError(resp.StatusCode, string(payload))
	}
	return payload, nil
}

// postIdempotent is post with network-error retry, for read-only
// endpoints where replaying the request cannot double-apply anything.
// A fresh reader is built per attempt, so partially consumed bodies
// never poison a retry.
func (c *Client) postIdempotent(path string, req any) ([]byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var payload []byte
	for attempt := 0; ; attempt++ {
		payload, err = c.postOnce(path, body)
		if err == nil || !isNetworkError(err) || attempt >= netRetries-1 {
			return payload, err
		}
		c.retry.sleep(c.retry.backoff(attempt))
	}
}

func (c *Client) getJSON(path string, v any) error {
	var lastErr error
	for attempt := 0; attempt < netRetries; attempt++ {
		if attempt > 0 {
			c.retry.sleep(c.retry.backoff(attempt - 1))
		}
		resp, err := c.http.Get(c.base + path)
		if err != nil {
			lastErr = &netError{fmt.Errorf("transport: %s: %w", path, err)}
			continue
		}
		payload, err := io.ReadAll(io.LimitReader(resp.Body, maxRespRead+1))
		resp.Body.Close()
		if err != nil {
			// Mid-body transport failure. These GETs are read-only, so
			// replaying the request is exactly as safe as retrying one
			// that never connected — previously this returned the decode
			// error immediately and wasted the remaining attempts.
			lastErr = &netError{fmt.Errorf("transport: %s: %w", path, err)}
			continue
		}
		if int64(len(payload)) > maxRespRead {
			return fmt.Errorf("%w: %s: body larger than %d bytes", ErrOversizeResponse, path, maxRespRead)
		}
		if resp.StatusCode != http.StatusOK {
			if len(payload) > 512 {
				payload = payload[:512]
			}
			return statusToCoreError(resp.StatusCode, string(payload))
		}
		return json.Unmarshal(payload, v)
	}
	return lastErr
}

// RegisterClient creates a client account on the distributor.
func (c *Client) RegisterClient(name string) error {
	_, err := c.post("/v1/clients", clientReq{Name: name})
	return err
}

// AddPassword registers a ⟨password, PL⟩ pair.
func (c *Client) AddPassword(client, password string, pl privacy.Level) error {
	_, err := c.post("/v1/passwords", passwordReq{Client: client, Password: password, PL: int(pl)})
	return err
}

// UploadOptions mirrors core.UploadOptions for the wire.
type UploadOptions struct {
	Assurance       raid.Level
	NoParity        bool
	MisleadFraction float64
	// MisleadLines supplies whole decoy records to blend into the
	// chunks instead of byte-level decoys — the knob line-oriented
	// files use so decoys parse like real records and poison mining
	// (core.UploadOptions.MisleadLines, carried over the wire).
	MisleadLines [][]byte
	Replicas     int
	EncryptKey   []byte
}

// Upload ships a file to the distributor.
func (c *Client) Upload(client, password, filename string, data []byte, pl privacy.Level, opts UploadOptions) (core.FileInfo, error) {
	payload, err := c.post("/v1/upload", uploadReq{
		Client: client, Password: password, Filename: filename,
		PL: int(pl), Data: data,
		Assurance: int(opts.Assurance), NoParity: opts.NoParity,
		MisleadFraction: opts.MisleadFraction,
		MisleadLines:    opts.MisleadLines,
		Replicas:        opts.Replicas,
		EncryptKey:      opts.EncryptKey,
	})
	if err != nil {
		return core.FileInfo{}, err
	}
	var info core.FileInfo
	if err := json.Unmarshal(payload, &info); err != nil {
		return core.FileInfo{}, err
	}
	return info, nil
}

// GetChunk fetches one chunk by (filename, serial).
func (c *Client) GetChunk(client, password, filename string, serial int) ([]byte, error) {
	return c.postIdempotent("/v1/get_chunk", chunkReq{Client: client, Password: password, Filename: filename, Serial: serial})
}

// GetFile fetches a whole file.
func (c *Client) GetFile(client, password, filename string) ([]byte, error) {
	return c.postIdempotent("/v1/get_file", fileReq{Client: client, Password: password, Filename: filename})
}

// GetSnapshot fetches a chunk's pre-modification state.
func (c *Client) GetSnapshot(client, password, filename string, serial int) ([]byte, error) {
	return c.postIdempotent("/v1/get_snapshot", chunkReq{Client: client, Password: password, Filename: filename, Serial: serial})
}

// UpdateChunk replaces a chunk's contents.
func (c *Client) UpdateChunk(client, password, filename string, serial int, data []byte) error {
	_, err := c.post("/v1/update_chunk", chunkReq{Client: client, Password: password, Filename: filename, Serial: serial, Data: data})
	return err
}

// RemoveChunk deletes one chunk.
func (c *Client) RemoveChunk(client, password, filename string, serial int) error {
	_, err := c.post("/v1/remove_chunk", chunkReq{Client: client, Password: password, Filename: filename, Serial: serial})
	return err
}

// RemoveFile deletes a file.
func (c *Client) RemoveFile(client, password, filename string) error {
	_, err := c.post("/v1/remove_file", fileReq{Client: client, Password: password, Filename: filename})
	return err
}

// GetRange fetches a byte range of a file.
func (c *Client) GetRange(client, password, filename string, offset, length int) ([]byte, error) {
	return c.postIdempotent("/v1/get_range", rangeReq{Client: client, Password: password, Filename: filename, Offset: offset, Length: length})
}

// Scrub triggers a distributor-wide integrity pass.
func (c *Client) Scrub() (core.ScrubReport, error) {
	payload, err := c.post("/v1/admin/scrub", struct{}{})
	if err != nil {
		return core.ScrubReport{}, err
	}
	var rep core.ScrubReport
	if err := json.Unmarshal(payload, &rep); err != nil {
		return core.ScrubReport{}, err
	}
	return rep, nil
}

// Decommission evacuates the provider at the given fleet index.
func (c *Client) Decommission(providerIndex int) (core.DecommissionReport, error) {
	payload, err := c.post("/v1/admin/decommission", decommissionReq{ProviderIndex: providerIndex})
	if err != nil {
		return core.DecommissionReport{}, err
	}
	var rep core.DecommissionReport
	if err := json.Unmarshal(payload, &rep); err != nil {
		return core.DecommissionReport{}, err
	}
	return rep, nil
}

// ChunkCount asks how many chunks a file has.
func (c *Client) ChunkCount(client, password, filename string) (int, error) {
	payload, err := c.postIdempotent("/v1/chunk_count", fileReq{Client: client, Password: password, Filename: filename})
	if err != nil {
		return 0, err
	}
	var out map[string]int
	if err := json.Unmarshal(payload, &out); err != nil {
		return 0, err
	}
	return out["chunks"], nil
}

// ProviderTable fetches Table I.
func (c *Client) ProviderTable() ([]core.ProviderRow, error) {
	var rows []core.ProviderRow
	err := c.getJSON("/v1/tables/providers", &rows)
	return rows, err
}

// ClientTable fetches Table II.
func (c *Client) ClientTable() ([]core.ClientRow, error) {
	var rows []core.ClientRow
	err := c.getJSON("/v1/tables/clients", &rows)
	return rows, err
}

// ChunkTable fetches Table III.
func (c *Client) ChunkTable() ([]core.ChunkRow, error) {
	var rows []core.ChunkRow
	err := c.getJSON("/v1/tables/chunks", &rows)
	return rows, err
}

// Stats fetches distributor statistics.
func (c *Client) Stats() (core.Stats, error) {
	var s core.Stats
	err := c.getJSON("/v1/stats", &s)
	return s, err
}

// Metrics fetches the distributor's operation counters.
func (c *Client) Metrics() (core.OpMetrics, error) {
	var m core.OpMetrics
	err := c.getJSON("/v1/metrics", &m)
	return m, err
}

// Health probes the distributor; a degraded status (any circuit not
// closed) is still a healthy endpoint, so only transport failures and
// an empty status are errors. The probe carries its own short deadline
// instead of the client's transfer-sized timeout: liveness polling must
// answer quickly even when the distributor is wedged mid-transfer.
func (c *Client) Health() error {
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/health", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("transport: /v1/health: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("transport: /v1/health: status %d", resp.StatusCode)
	}
	var out HealthReport
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return err
	}
	if out.Status == "" {
		return fmt.Errorf("transport: distributor unhealthy: %+v", out)
	}
	return nil
}

// ProviderHealth fetches the per-provider circuit-breaker view.
func (c *Client) ProviderHealth() ([]core.ProviderHealth, error) {
	var out HealthReport
	if err := c.getJSON("/v1/health", &out); err != nil {
		return nil, err
	}
	return out.Providers, nil
}

// CacheHealth fetches the distributor's chunk-cache counters; a zero
// Capacity means caching is disabled.
func (c *Client) CacheHealth() (core.CacheStats, error) {
	var out HealthReport
	if err := c.getJSON("/v1/health", &out); err != nil {
		return core.CacheStats{}, err
	}
	return out.Cache, nil
}

// HealthReport fetches the full /v1/health body, including the
// replication-lag section when the server fronts a cluster.
func (c *Client) HealthReport() (HealthReport, error) {
	var out HealthReport
	if err := c.getJSON("/v1/health", &out); err != nil {
		return HealthReport{}, err
	}
	return out, nil
}
