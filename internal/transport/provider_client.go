package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/privacy"
	"repro/internal/provider"
)

// probeTimeout caps one health probe round-trip. Probes share the blob
// transfer http.Client, whose 10s timeout is sized for multi-megabyte
// payloads; a liveness check that waits that long on a stalled provider
// is itself the outage, so each probe carries its own short deadline.
const probeTimeout = time.Second

// maxBlobRead bounds how much of a chunk response body Get will accept.
// It is a variable (normally maxBlobBytes) only so tests can lower it
// without serving a 64 MiB body.
var maxBlobRead int64 = maxBlobBytes

// RemoteProvider is a provider.Provider backed by a ProviderServer over
// HTTP, letting a distributor treat a networked provider exactly like an
// in-process one.
type RemoteProvider struct {
	base   string
	client *http.Client
	info   provider.Info
	retry  *retrier
}

var _ provider.Provider = (*RemoteProvider)(nil)

// DialProvider connects to a provider server and caches its identity.
// A nil client gets a default backed by the shared pooled transport, so
// hedged and parallel shard fetches reuse warm connections instead of
// re-dialing (the stock transport retains only 2 idle conns per host).
func DialProvider(baseURL string, client *http.Client) (*RemoteProvider, error) {
	if client == nil {
		client = defaultHTTPClient(10 * time.Second)
	}
	rp := &RemoteProvider{base: baseURL, client: client, retry: newRetrier()}
	resp, err := client.Get(baseURL + "/v1/info")
	if err != nil {
		return nil, fmt.Errorf("transport: dial provider: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("transport: dial provider: status %d", resp.StatusCode)
	}
	var dto infoDTO
	if err := json.NewDecoder(resp.Body).Decode(&dto); err != nil {
		return nil, fmt.Errorf("transport: dial provider: %w", err)
	}
	rp.info = provider.Info{Name: dto.Name, PL: privacy.Level(dto.PL), CL: privacy.CostLevel(dto.CL)}
	return rp, nil
}

// Info returns the identity cached at dial time.
func (rp *RemoteProvider) Info() provider.Info { return rp.info }

func (rp *RemoteProvider) chunkURL(key string) string {
	return rp.base + "/v1/chunks/" + url.PathEscape(key)
}

// withNetRetry runs op with jittered exponential backoff on failures at
// the network layer (no HTTP response at all). Provider operations are
// key-addressed and idempotent — re-putting the same blob, re-getting,
// or re-deleting a key cannot double-apply — so retrying is always safe
// here. Server-status errors are returned without retry: the provider
// answered, and the distributor's own transient-retry and circuit
// breaker handle those.
func (rp *RemoteProvider) withNetRetry(op func() (netFail bool, err error)) error {
	for attempt := 0; ; attempt++ {
		netFail, err := op()
		if err == nil || !netFail || attempt >= netRetries-1 {
			return err
		}
		rp.retry.sleep(rp.retry.backoff(attempt))
	}
}

// Put stores data under key.
func (rp *RemoteProvider) Put(key string, data []byte) error {
	return rp.withNetRetry(func() (bool, error) {
		req, err := http.NewRequest(http.MethodPut, rp.chunkURL(key), bytes.NewReader(data))
		if err != nil {
			return false, err
		}
		resp, err := rp.client.Do(req)
		if err != nil {
			return true, fmt.Errorf("%w: %v", provider.ErrOutage, err)
		}
		defer drain(resp)
		return false, providerError(resp)
	})
}

// Get fetches the value under key.
func (rp *RemoteProvider) Get(key string) ([]byte, error) {
	var data []byte
	err := rp.withNetRetry(func() (bool, error) {
		resp, err := rp.client.Get(rp.chunkURL(key))
		if err != nil {
			return true, fmt.Errorf("%w: %v", provider.ErrOutage, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return false, statusToProviderError(resp)
		}
		// Read one byte past the cap: a body that reaches it was truncated,
		// and silently handing back a cut-off blob would surface later as
		// an inexplicable length or checksum mismatch far from the cause.
		data, err = io.ReadAll(io.LimitReader(resp.Body, maxBlobRead+1))
		if err != nil {
			return false, err
		}
		if int64(len(data)) > maxBlobRead {
			data = nil
			return false, fmt.Errorf("transport: blob %q exceeds %d-byte limit", key, maxBlobRead)
		}
		return false, nil
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

// Delete removes key.
func (rp *RemoteProvider) Delete(key string) error {
	return rp.withNetRetry(func() (bool, error) {
		req, err := http.NewRequest(http.MethodDelete, rp.chunkURL(key), nil)
		if err != nil {
			return false, err
		}
		resp, err := rp.client.Do(req)
		if err != nil {
			return true, fmt.Errorf("%w: %v", provider.ErrOutage, err)
		}
		defer drain(resp)
		return false, providerError(resp)
	})
}

// Down probes the health endpoint; any failure — including the probe
// deadline expiring against a stalled provider — counts as down.
func (rp *RemoteProvider) Down() bool {
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rp.base+"/v1/health", nil)
	if err != nil {
		return true
	}
	resp, err := rp.client.Do(req)
	if err != nil {
		return true
	}
	defer drain(resp)
	return resp.StatusCode != http.StatusOK
}

// SetOutage toggles the remote failure-injection switch; errors are
// swallowed (the control plane is best-effort in simulations).
func (rp *RemoteProvider) SetOutage(down bool) {
	body, _ := json.Marshal(map[string]bool{"down": down})
	resp, err := rp.client.Post(rp.base+"/v1/outage", "application/json", bytes.NewReader(body))
	if err == nil {
		drain(resp)
	}
}

// Keys lists stored keys; nil on transport failure.
func (rp *RemoteProvider) Keys() []string {
	var keys []string
	if err := rp.getJSON("/v1/keys", &keys); err != nil {
		return nil
	}
	return keys
}

// Len returns the number of stored keys.
func (rp *RemoteProvider) Len() int { return len(rp.Keys()) }

// Dump returns the remote provider's complete contents.
func (rp *RemoteProvider) Dump() map[string][]byte {
	var d map[string][]byte
	if err := rp.getJSON("/v1/dump", &d); err != nil {
		return nil
	}
	return d
}

// Usage returns remote billing counters.
func (rp *RemoteProvider) Usage() provider.Usage {
	var u provider.Usage
	_ = rp.getJSON("/v1/usage", &u)
	return u
}

func (rp *RemoteProvider) getJSON(path string, v any) error {
	resp, err := rp.client.Get(rp.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("transport: %s: status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// maxDrainBytes bounds how much of an unread response body drain will
// consume. Keep-alive reuse requires reading the body to EOF, so the
// bound must comfortably cover any error payload the servers emit; a
// body still flowing past it is abandoned (Close then discards the
// connection) rather than slurped without limit.
const maxDrainBytes = 256 << 10

func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxDrainBytes))
	resp.Body.Close()
}

func providerError(resp *http.Response) error {
	if resp.StatusCode == http.StatusNoContent || resp.StatusCode == http.StatusOK {
		return nil
	}
	return statusToProviderError(resp)
}

func statusToProviderError(resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	switch resp.StatusCode {
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", provider.ErrNotFound, bytes.TrimSpace(msg))
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%w: %s", provider.ErrOutage, bytes.TrimSpace(msg))
	case http.StatusBadGateway:
		return fmt.Errorf("%w: %s", provider.ErrInjected, bytes.TrimSpace(msg))
	default:
		return fmt.Errorf("transport: provider status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
}
