package transport

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/raid"
)

// hookedDistributorFixture serves a distributor over in-process hooked
// providers, so tests can fail provider I/O mid-stream while talking to
// the real HTTP surface. Window 1 makes the streamed read strictly
// sequential: chunk k is on the wire before chunk k+1 is fetched.
func hookedDistributorFixture(t *testing.T, n, window int) (*Client, []*provider.Hooked) {
	t.Helper()
	fleet, err := provider.NewFleet()
	if err != nil {
		t.Fatal(err)
	}
	hooked := make([]*provider.Hooked, n)
	for i := 0; i < n; i++ {
		mem, err := provider.New(provider.Info{
			Name: fmt.Sprintf("h%d", i), PL: privacy.High, CL: 1,
		}, provider.Options{})
		if err != nil {
			t.Fatal(err)
		}
		hooked[i] = provider.NewHooked(mem)
		if err := fleet.Add(hooked[i]); err != nil {
			t.Fatal(err)
		}
	}
	dist, err := core.New(core.Config{Fleet: fleet, StreamWindow: window, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	dsrv := httptest.NewServer(NewDistributorServer(dist))
	t.Cleanup(dsrv.Close)
	client := NewClient(dsrv.URL, dsrv.Client())
	if err := client.RegisterClient("bob"); err != nil {
		t.Fatal(err)
	}
	if err := client.AddPassword("bob", "pw", privacy.High); err != nil {
		t.Fatal(err)
	}
	return client, hooked
}

func TestStreamUploadDownloadOverHTTP(t *testing.T) {
	client, _ := distributorFixture(t, 6)
	if err := client.RegisterClient("bob"); err != nil {
		t.Fatal(err)
	}
	if err := client.AddPassword("bob", "pw", privacy.High); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	data := make([]byte, 200_000)
	rng.Read(data)

	info, err := client.UploadFrom("bob", "pw", "s.bin", bytes.NewReader(data), privacy.Moderate, UploadOptions{MisleadFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if info.Bytes != len(data) || info.Chunks < 2 {
		t.Fatalf("FileInfo = %+v", info)
	}
	var buf bytes.Buffer
	n, err := client.GetFileTo(&buf, "bob", "pw", "s.bin")
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(data)) || !bytes.Equal(buf.Bytes(), data) {
		t.Fatalf("streamed read: %d bytes, equal=%v", n, bytes.Equal(buf.Bytes(), data))
	}
	// Interop both ways: the buffered endpoints see a streamed upload…
	got, err := client.GetFile("bob", "pw", "s.bin")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("GetFile after UploadFrom: %v", err)
	}
	// …and a buffered upload streams back.
	if _, err := client.Upload("bob", "pw", "b.bin", data, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if _, err := client.GetFileTo(&buf, "bob", "pw", "b.bin"); err != nil || !bytes.Equal(buf.Bytes(), data) {
		t.Fatalf("GetFileTo after Upload: %v", err)
	}
}

func TestStreamUploadOptionsSurviveWire(t *testing.T) {
	client, _ := distributorFixture(t, 6)
	if err := client.RegisterClient("bob"); err != nil {
		t.Fatal(err)
	}
	if err := client.AddPassword("bob", "pw", privacy.High); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	data := make([]byte, 70_000)
	rng.Read(data)
	key := make([]byte, 32)
	rng.Read(key)

	if _, err := client.UploadFrom("bob", "pw", "enc.bin", bytes.NewReader(data), privacy.High, UploadOptions{EncryptKey: key, Assurance: raid.RAID6}); err != nil {
		t.Fatal(err)
	}
	got, err := client.GetFile("bob", "pw", "enc.bin")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("encrypted streamed upload: %v", err)
	}
	// A bad option must be rejected with the same error identity as the
	// JSON endpoint.
	if _, err := client.UploadFrom("bob", "pw", "bad.bin", bytes.NewReader(data), privacy.High, UploadOptions{MisleadFraction: 2}); !errors.Is(err, core.ErrConfig) {
		t.Fatalf("bad option over the wire: %v", err)
	}
}

func TestStreamErrorsSurviveWire(t *testing.T) {
	client, _ := distributorFixture(t, 5)
	if err := client.RegisterClient("bob"); err != nil {
		t.Fatal(err)
	}
	if err := client.AddPassword("bob", "pw", privacy.High); err != nil {
		t.Fatal(err)
	}
	data := []byte("short file")
	if _, err := client.UploadFrom("bob", "pw", "dup.bin", bytes.NewReader(data), privacy.High, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.UploadFrom("bob", "pw", "dup.bin", bytes.NewReader(data), privacy.High, UploadOptions{}); !errors.Is(err, core.ErrExists) {
		t.Fatalf("duplicate: %v", err)
	}
	var buf bytes.Buffer
	if _, err := client.GetFileTo(&buf, "bob", "pw", "nope.bin"); !errors.Is(err, core.ErrNoSuchFile) {
		t.Fatalf("missing file: %v", err)
	}
	if _, err := client.GetFileTo(&buf, "bob", "wrong", "dup.bin"); !errors.Is(err, core.ErrAuth) {
		t.Fatalf("bad password: %v", err)
	}
}

// TestStreamBypassesResponseCap pins the satellite contract: the
// metadata/whole-buffer endpoints stay capped at maxRespRead, while the
// chunked file stream carries bodies of any size.
func TestStreamBypassesResponseCap(t *testing.T) {
	defer func(old int64) { maxRespRead = old }(maxRespRead)
	maxRespRead = 64 << 10

	client, _ := distributorFixture(t, 5)
	if err := client.RegisterClient("bob"); err != nil {
		t.Fatal(err)
	}
	if err := client.AddPassword("bob", "pw", privacy.High); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	data := make([]byte, 300_000) // well past the lowered 64 KiB cap
	rng.Read(data)
	if _, err := client.UploadFrom("bob", "pw", "big.bin", bytes.NewReader(data), privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	// The buffered JSON path refuses the oversize body…
	if _, err := client.GetFile("bob", "pw", "big.bin"); !errors.Is(err, ErrOversizeResponse) {
		t.Fatalf("buffered GetFile past the cap: %v", err)
	}
	// …while the stream path delivers it whole.
	var buf bytes.Buffer
	n, err := client.GetFileTo(&buf, "bob", "pw", "big.bin")
	if err != nil || n != int64(len(data)) || !bytes.Equal(buf.Bytes(), data) {
		t.Fatalf("streamed read past the cap: n=%d err=%v", n, err)
	}
}

// TestStreamTruncationDetected kills every provider after the first
// chunk is served: the server has already streamed bytes when the read
// fails, so it aborts the connection and the client must surface a
// truncation error — never a silent short body.
func TestStreamTruncationDetected(t *testing.T) {
	client, hooked := hookedDistributorFixture(t, 5, 1)
	rng := rand.New(rand.NewSource(37))
	data := make([]byte, 64<<10) // 8 chunks of 8 KiB at High
	rng.Read(data)
	if _, err := client.UploadFrom("bob", "pw", "cut.bin", bytes.NewReader(data), privacy.High, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	gets := 0
	for _, h := range hooked {
		h.SetBeforeGet(func(string) error {
			mu.Lock()
			defer mu.Unlock()
			gets++
			if gets > 1 {
				return provider.ErrOutage
			}
			return nil
		})
	}
	var buf bytes.Buffer
	n, err := client.GetFileTo(&buf, "bob", "pw", "cut.bin")
	if err == nil {
		t.Fatalf("truncated stream returned success (%d bytes)", n)
	}
	if !isNetworkError(err) {
		t.Fatalf("truncation surfaced as %v, want a transport error", err)
	}
	if n == 0 || n >= int64(len(data)) {
		t.Fatalf("delivered prefix %d of %d", n, len(data))
	}
	if !bytes.Equal(buf.Bytes()[:n], data[:n]) {
		t.Fatal("delivered prefix corrupt")
	}
}
