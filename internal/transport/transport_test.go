package transport

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/provider"
)

func newProviderPair(t *testing.T, info provider.Info) (*provider.MemProvider, *RemoteProvider) {
	t.Helper()
	mem, err := provider.New(info, provider.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewProviderServer(mem))
	t.Cleanup(srv.Close)
	remote, err := DialProvider(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	return mem, remote
}

func TestRemoteProviderInfo(t *testing.T) {
	info := provider.Info{Name: "NetStore", PL: privacy.Moderate, CL: 2}
	_, remote := newProviderPair(t, info)
	if remote.Info() != info {
		t.Fatalf("Info = %+v, want %+v", remote.Info(), info)
	}
}

func TestRemoteProviderPutGetDelete(t *testing.T) {
	_, remote := newProviderPair(t, provider.Info{Name: "N", PL: privacy.High, CL: 1})
	data := []byte("hello over the wire")
	if err := remote.Put("k1", data); err != nil {
		t.Fatal(err)
	}
	got, err := remote.Get("k1")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := remote.Delete("k1"); err != nil {
		t.Fatal(err)
	}
	if _, err := remote.Get("k1"); !errors.Is(err, provider.ErrNotFound) {
		t.Fatalf("Get deleted = %v, want ErrNotFound", err)
	}
	if err := remote.Delete("k1"); !errors.Is(err, provider.ErrNotFound) {
		t.Fatalf("Delete missing = %v, want ErrNotFound", err)
	}
}

func TestRemoteProviderBinaryPayload(t *testing.T) {
	_, remote := newProviderPair(t, provider.Info{Name: "B", PL: privacy.High, CL: 0})
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 10_000)
	rng.Read(data)
	if err := remote.Put("bin", data); err != nil {
		t.Fatal(err)
	}
	got, err := remote.Get("bin")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("binary round trip failed: %v", err)
	}
}

func TestRemoteProviderKeySpecialChars(t *testing.T) {
	_, remote := newProviderPair(t, provider.Info{Name: "S", PL: privacy.High, CL: 0})
	key := "weird/key with spaces?&#"
	if err := remote.Put(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := remote.Get(key)
	if err != nil || string(got) != "v" {
		t.Fatalf("special-char key: %q, %v", got, err)
	}
}

func TestRemoteProviderOutagePropagates(t *testing.T) {
	mem, remote := newProviderPair(t, provider.Info{Name: "O", PL: privacy.High, CL: 0})
	_ = mem.Put("k", []byte("v"))
	if remote.Down() {
		t.Fatal("healthy provider reports down")
	}
	remote.SetOutage(true)
	if !mem.Down() {
		t.Fatal("SetOutage did not reach the server")
	}
	if !remote.Down() {
		t.Fatal("Down() false during outage")
	}
	if _, err := remote.Get("k"); !errors.Is(err, provider.ErrOutage) {
		t.Fatalf("Get during outage = %v, want ErrOutage", err)
	}
	remote.SetOutage(false)
	if _, err := remote.Get("k"); err != nil {
		t.Fatalf("Get after recovery: %v", err)
	}
}

func TestRemoteProviderUnreachableIsDown(t *testing.T) {
	mem, _ := provider.New(provider.Info{Name: "gone", PL: privacy.Low, CL: 0}, provider.Options{})
	srv := httptest.NewServer(NewProviderServer(mem))
	remote, err := DialProvider(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if !remote.Down() {
		t.Fatal("unreachable provider reports up")
	}
	if err := remote.Put("k", []byte("v")); !errors.Is(err, provider.ErrOutage) {
		t.Fatalf("Put to dead server = %v, want ErrOutage", err)
	}
}

func TestRemoteProviderIntrospection(t *testing.T) {
	mem, remote := newProviderPair(t, provider.Info{Name: "I", PL: privacy.High, CL: 0})
	_ = mem.Put("b", []byte("2"))
	_ = mem.Put("a", []byte("1"))
	keys := remote.Keys()
	if len(keys) != 2 || keys[0] != "a" {
		t.Fatalf("Keys = %v", keys)
	}
	if remote.Len() != 2 {
		t.Fatalf("Len = %d", remote.Len())
	}
	d := remote.Dump()
	if string(d["a"]) != "1" || string(d["b"]) != "2" {
		t.Fatalf("Dump = %v", d)
	}
	u := remote.Usage()
	if u.Puts != 2 {
		t.Fatalf("Usage.Puts = %d", u.Puts)
	}
}

func TestDialProviderFailure(t *testing.T) {
	if _, err := DialProvider("http://127.0.0.1:1", nil); err == nil {
		t.Fatal("dial to dead address succeeded")
	}
}

// distributorFixture stands up a full networked stack: HTTP providers, a
// distributor using them remotely, and an HTTP distributor server with a
// client — the paper's whole architecture as processes.
func distributorFixture(t *testing.T, nProviders int) (*Client, []*provider.MemProvider) {
	t.Helper()
	fleet, err := provider.NewFleet()
	if err != nil {
		t.Fatal(err)
	}
	mems := make([]*provider.MemProvider, nProviders)
	for i := 0; i < nProviders; i++ {
		mem, err := provider.New(provider.Info{
			Name: fmt.Sprintf("net%d", i), PL: privacy.High, CL: privacy.CostLevel(i % 4),
		}, provider.Options{})
		if err != nil {
			t.Fatal(err)
		}
		mems[i] = mem
		srv := httptest.NewServer(NewProviderServer(mem))
		t.Cleanup(srv.Close)
		remote, err := DialProvider(srv.URL, srv.Client())
		if err != nil {
			t.Fatal(err)
		}
		if err := fleet.Add(remote); err != nil {
			t.Fatal(err)
		}
	}
	dist, err := core.New(core.Config{Fleet: fleet})
	if err != nil {
		t.Fatal(err)
	}
	dsrv := httptest.NewServer(NewDistributorServer(dist))
	t.Cleanup(dsrv.Close)
	return NewClient(dsrv.URL, dsrv.Client()), mems
}

func TestEndToEndOverHTTP(t *testing.T) {
	client, _ := distributorFixture(t, 5)
	if err := client.Health(); err != nil {
		t.Fatal(err)
	}
	if err := client.RegisterClient("bob"); err != nil {
		t.Fatal(err)
	}
	if err := client.AddPassword("bob", "pw", privacy.High); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 60_000)
	rng.Read(data)
	info, err := client.Upload("bob", "pw", "f.bin", data, privacy.Moderate, UploadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Chunks < 2 {
		t.Fatalf("chunks = %d", info.Chunks)
	}
	n, err := client.ChunkCount("bob", "pw", "f.bin")
	if err != nil || n != info.Chunks {
		t.Fatalf("ChunkCount = %d, %v", n, err)
	}
	got, err := client.GetFile("bob", "pw", "f.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("file round trip over HTTP mismatch")
	}
	chunk, err := client.GetChunk("bob", "pw", "f.bin", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chunk, data[:len(chunk)]) {
		t.Fatal("chunk content mismatch")
	}
}

func TestEndToEndErrorsSurviveWire(t *testing.T) {
	client, _ := distributorFixture(t, 4)
	_ = client.RegisterClient("bob")
	_ = client.AddPassword("bob", "pw", privacy.Low)
	_ = client.AddPassword("bob", "weak", privacy.Public)
	if _, err := client.Upload("bob", "pw", "f", []byte("x"), privacy.Low, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := client.RegisterClient("bob"); !errors.Is(err, core.ErrExists) {
		t.Fatalf("dup client: %v", err)
	}
	if _, err := client.Upload("bob", "pw", "f", []byte("y"), privacy.Low, UploadOptions{}); !errors.Is(err, core.ErrExists) {
		t.Fatalf("dup file: %v", err)
	}
	if _, err := client.GetFile("bob", "wrong", "f"); !errors.Is(err, core.ErrAuth) {
		t.Fatalf("bad password: %v", err)
	}
	if _, err := client.GetChunk("bob", "weak", "f", 0); !errors.Is(err, core.ErrAuth) {
		t.Fatalf("weak password: %v", err)
	}
	if _, err := client.GetFile("bob", "pw", "missing"); !errors.Is(err, core.ErrNoSuchFile) {
		t.Fatalf("missing file: %v", err)
	}
	if _, err := client.GetChunk("bob", "pw", "f", 99); !errors.Is(err, core.ErrNoSuchChunk) {
		t.Fatalf("bad serial: %v", err)
	}
	if _, err := client.GetSnapshot("bob", "pw", "f", 0); !errors.Is(err, core.ErrNoSnapshot) {
		t.Fatalf("no snapshot: %v", err)
	}
	if _, err := client.Upload("bob", "pw", "g", []byte("z"), privacy.Level(9), UploadOptions{}); !errors.Is(err, core.ErrConfig) {
		t.Fatalf("bad level: %v", err)
	}
}

func TestEndToEndLifecycleOverHTTP(t *testing.T) {
	client, _ := distributorFixture(t, 5)
	_ = client.RegisterClient("bob")
	_ = client.AddPassword("bob", "pw", privacy.High)
	data := []byte("original chunk contents for the update test ........")
	if _, err := client.Upload("bob", "pw", "f", data, privacy.Low, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := client.UpdateChunk("bob", "pw", "f", 0, []byte("new state")); err != nil {
		t.Fatal(err)
	}
	got, err := client.GetChunk("bob", "pw", "f", 0)
	if err != nil || string(got) != "new state" {
		t.Fatalf("updated chunk = %q, %v", got, err)
	}
	snap, err := client.GetSnapshot("bob", "pw", "f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, data) {
		t.Fatal("snapshot over HTTP mismatch")
	}
	if err := client.RemoveFile("bob", "pw", "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.GetFile("bob", "pw", "f"); !errors.Is(err, core.ErrNoSuchFile) {
		t.Fatalf("get removed file: %v", err)
	}
}

func TestEndToEndRAIDRecoveryOverHTTP(t *testing.T) {
	client, mems := distributorFixture(t, 6)
	_ = client.RegisterClient("bob")
	_ = client.AddPassword("bob", "pw", privacy.High)
	rng := rand.New(rand.NewSource(10))
	data := make([]byte, 80_000)
	rng.Read(data)
	if _, err := client.Upload("bob", "pw", "f", data, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	// Take one backing provider down directly (simulating a real outage,
	// not a control-plane call).
	mems[2].SetOutage(true)
	got, err := client.GetFile("bob", "pw", "f")
	if err != nil {
		t.Fatalf("retrieval with provider outage: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("recovered file mismatch")
	}
}

func TestTablesOverHTTP(t *testing.T) {
	client, _ := distributorFixture(t, 4)
	_ = client.RegisterClient("bob")
	_ = client.AddPassword("bob", "pw", privacy.High)
	if _, err := client.Upload("bob", "pw", "f", make([]byte, 40_000), privacy.Moderate, UploadOptions{MisleadFraction: 0.1}); err != nil {
		t.Fatal(err)
	}
	prows, err := client.ProviderTable()
	if err != nil || len(prows) != 4 {
		t.Fatalf("provider table: %d rows, %v", len(prows), err)
	}
	crows, err := client.ClientTable()
	if err != nil || len(crows) != 1 || crows[0].Client != "bob" {
		t.Fatalf("client table: %+v, %v", crows, err)
	}
	chrows, err := client.ChunkTable()
	if err != nil || len(chrows) == 0 {
		t.Fatalf("chunk table: %d rows, %v", len(chrows), err)
	}
	stats, err := client.Stats()
	if err != nil || stats.Chunks != len(chrows) {
		t.Fatalf("stats: %+v, %v", stats, err)
	}
}

func TestGetRangeAndAdminOverHTTP(t *testing.T) {
	client, mems := distributorFixture(t, 6)
	_ = client.RegisterClient("bob")
	_ = client.AddPassword("bob", "pw", privacy.High)
	rng := rand.New(rand.NewSource(20))
	data := make([]byte, 90_000)
	rng.Read(data)
	if _, err := client.Upload("bob", "pw", "f", data, privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := client.GetRange("bob", "pw", "f", 40_000, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[40_000:42_000]) {
		t.Fatal("range over HTTP mismatch")
	}
	if _, err := client.GetRange("bob", "pw", "f", 89_999, 100); !errors.Is(err, core.ErrRange) {
		t.Fatalf("overflow range: %v", err)
	}

	// Corrupt a stored blob on a backing provider; scrub repairs it.
	victim := mems[0]
	keys := victim.Keys()
	if len(keys) == 0 {
		victim = mems[1]
		keys = victim.Keys()
	}
	blob, _ := victim.Get(keys[0])
	for i := range blob {
		blob[i] ^= 0xFF
	}
	_ = victim.Put(keys[0], blob)
	rep, err := client.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChunksChecked == 0 {
		t.Fatalf("scrub over HTTP: %+v", rep)
	}

	// Decommission provider 2 over the wire.
	drep, err := client.Decommission(2)
	if err != nil {
		t.Fatal(err)
	}
	if mems[2].Len() != 0 {
		t.Fatalf("provider 2 still holds %d keys after decommission (%+v)", mems[2].Len(), drep)
	}
	back, err := client.GetFile("bob", "pw", "f")
	if err != nil || !bytes.Equal(back, data) {
		t.Fatalf("read after remote decommission: %v", err)
	}
	if _, err := client.Decommission(99); err == nil {
		t.Fatal("bad index accepted over HTTP")
	}
}

func TestReplicasOverHTTP(t *testing.T) {
	client, _ := distributorFixture(t, 6)
	_ = client.RegisterClient("bob")
	_ = client.AddPassword("bob", "pw", privacy.High)
	if _, err := client.Upload("bob", "pw", "f", make([]byte, 40_000), privacy.Moderate, UploadOptions{Replicas: 1}); err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.MirrorShards != stats.Chunks {
		t.Fatalf("mirrors over HTTP = %d, chunks = %d", stats.MirrorShards, stats.Chunks)
	}
}

func TestMetricsOverHTTP(t *testing.T) {
	client, _ := distributorFixture(t, 4)
	_ = client.RegisterClient("bob")
	_ = client.AddPassword("bob", "pw", privacy.High)
	if _, err := client.Upload("bob", "pw", "f", make([]byte, 30_000), privacy.Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.GetFile("bob", "pw", "f"); err != nil {
		t.Fatal(err)
	}
	m, err := client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Uploads != 1 || m.FileReads != 1 {
		t.Fatalf("metrics over HTTP: %+v", m)
	}
}
