package transport

import (
	"net"
	"net/http"
	"time"
)

// Connection pooling. http.DefaultTransport keeps only 2 idle
// connections per host (DefaultMaxIdleConnsPerHost), so a hedged read
// or a sharded fan-out that puts more than two concurrent requests on
// one distributor tears down and re-dials connections on every burst —
// extra RTTs and TIME_WAIT churn exactly on the latency-sensitive path.
// Every client this package creates with a nil *http.Client therefore
// shares one pooled transport sized for fan-out.

// poolMaxIdlePerHost bounds retained idle connections per distributor
// or provider endpoint. It needs to cover the largest realistic burst
// against a single host: hedged reads cap at the provider fleet size,
// and cloudbench drives up to a few hundred workers at one loopback
// distributor.
const poolMaxIdlePerHost = 256

// NewPooledTransport returns a transport tuned for this package's
// fan-out pattern: many short JSON/octet requests against a small, hot
// set of hosts. Callers that need custom TLS or proxies can start from
// this and override fields before wrapping it in an http.Client.
func NewPooledTransport() *http.Transport {
	return &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   30 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		ForceAttemptHTTP2:     true,
		MaxIdleConns:          1024,
		MaxIdleConnsPerHost:   poolMaxIdlePerHost,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   10 * time.Second,
		ExpectContinueTimeout: 1 * time.Second,
	}
}

// sharedTransport is the process-wide pool behind every default client.
// Sharing one transport (rather than one per NewClient call) is what
// lets a Client and the provider dials reuse each other's warm
// connections to the same host.
var sharedTransport = NewPooledTransport()

// defaultHTTPClient wraps the shared pool with a per-use-case timeout.
func defaultHTTPClient(timeout time.Duration) *http.Client {
	return &http.Client{Timeout: timeout, Transport: sharedTransport}
}
