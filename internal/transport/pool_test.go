package transport

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/provider"
)

// dialCountingClient wraps an http.Client so every new TCP connect is
// counted via httptrace, independent of what the transport reuses.
type dialCountingClient struct {
	hc    *http.Client
	dials atomic.Int64
}

func (d *dialCountingClient) client() *http.Client {
	return &http.Client{
		Timeout: d.hc.Timeout,
		Transport: roundTripperFunc(func(req *http.Request) (*http.Response, error) {
			trace := &httptrace.ClientTrace{
				ConnectStart: func(network, addr string) { d.dials.Add(1) },
			}
			req = req.WithContext(httptrace.WithClientTrace(req.Context(), trace))
			return d.hc.Transport.RoundTrip(req)
		}),
	}
}

type roundTripperFunc func(*http.Request) (*http.Response, error)

func (f roundTripperFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// TestPooledTransportReusesConnections is the regression test for the
// connection-pool sizing fix: against a warm pool, a burst of
// sequential requests must open zero new TCP connections. The stock
// http.DefaultTransport keeps only 2 idle conns per host, so fan-out
// beyond that silently re-dials on every wave — the contrast subtest
// pins that failure mode so the fix stays observable.
func TestPooledTransportReusesConnections(t *testing.T) {
	fleet, err := provider.NewFleet()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mem, err := provider.New(provider.Info{
			Name: fmt.Sprintf("p%d", i), PL: privacy.High, CL: 1,
		}, provider.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := fleet.Add(mem); err != nil {
			t.Fatal(err)
		}
	}
	dist, err := core.New(core.Config{Fleet: fleet})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewDistributorServer(dist))
	t.Cleanup(srv.Close)

	counting := &dialCountingClient{hc: &http.Client{
		Timeout:   30 * time.Second,
		Transport: NewPooledTransport(),
	}}
	cl := NewClient(srv.URL, counting.client())
	if err := cl.RegisterClient("warm"); err != nil {
		t.Fatal(err)
	}
	if err := cl.AddPassword("warm", "pw", privacy.High); err != nil {
		t.Fatal(err)
	}
	// Warm the pool: run one concurrent wave so several conns exist.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _ = cl.Upload("warm", "pw", fmt.Sprintf("w%d", i), []byte("warmup payload"), privacy.High, UploadOptions{})
		}(i)
	}
	wg.Wait()

	counting.dials.Store(0)
	for i := 0; i < 32; i++ {
		if _, err := cl.GetFile("warm", "pw", fmt.Sprintf("w%d", i%8)); err != nil {
			t.Fatalf("warm get %d: %v", i, err)
		}
	}
	if n := counting.dials.Load(); n != 0 {
		t.Fatalf("warm pooled transport opened %d new connections, want 0", n)
	}

	t.Run("contrast: per-request transport re-dials", func(t *testing.T) {
		// A fresh transport per request can never reuse a connection —
		// the anti-pattern the shared pool exists to prevent.
		for i := 0; i < 4; i++ {
			cold := &dialCountingClient{hc: &http.Client{Transport: NewPooledTransport()}}
			c := NewClient(srv.URL, cold.client())
			if _, err := c.GetFile("warm", "pw", "w0"); err != nil {
				t.Fatal(err)
			}
			if cold.dials.Load() == 0 {
				t.Fatal("fresh transport reused a connection it cannot have")
			}
		}
	})
}
