package transport

import (
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/privacy"
)

// API is the operation surface shared by a single-endpoint Client and
// the sharded System, so load generators, tools and proxies can drive
// either without caring how many distributors sit behind it.
type API interface {
	RegisterClient(name string) error
	AddPassword(client, password string, pl privacy.Level) error
	Upload(client, password, filename string, data []byte, pl privacy.Level, opts UploadOptions) (core.FileInfo, error)
	UploadFrom(client, password, filename string, r io.Reader, pl privacy.Level, opts UploadOptions) (core.FileInfo, error)
	GetChunk(client, password, filename string, serial int) ([]byte, error)
	GetFile(client, password, filename string) ([]byte, error)
	GetFileTo(w io.Writer, client, password, filename string) (int64, error)
	GetSnapshot(client, password, filename string, serial int) ([]byte, error)
	GetRange(client, password, filename string, offset, length int) ([]byte, error)
	UpdateChunk(client, password, filename string, serial int, data []byte) error
	RemoveChunk(client, password, filename string, serial int) error
	RemoveFile(client, password, filename string) error
	ChunkCount(client, password, filename string) (int, error)
	Scrub() (core.ScrubReport, error)
	Stats() (core.Stats, error)
	Health() error
}

var (
	_ API = (*Client)(nil)
	_ API = (*System)(nil)
)

// System is the sharded, client-side face of a multi-distributor
// deployment: a consistent-hash ring (internal/dht, virtual-node
// balanced) over one Client per shard. Every ⟨client, filename⟩ pair
// hashes to exactly one owning distributor (dht.FileKey), so a file's
// chunks, generation counters and WAL records live on a single shard;
// account operations (register, password) broadcast, because a client's
// files scatter across all shards. Adding a shard moves ≈1/n of the
// namespace — the rebalancing contract pinned by the dht tests — and
// the vnode spread keeps every shard's slice near 1/n, so aggregate
// throughput scales with shard count instead of with the luck of one
// URL's hash.
type System struct {
	ring   *dht.BalancedRing
	shards []*Client
	urls   []string
	index  map[string]int // ring member name (the URL) -> shard index
}

// NewSystem builds a sharded client over the given distributor base
// URLs. Shard identity is the URL itself: the ring position of each
// shard, and therefore the namespace partition, is stable for a fixed
// URL set regardless of order. A nil hc uses the shared pooled
// transport.
func NewSystem(urls []string, hc *http.Client) (*System, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("transport: system needs at least one shard URL")
	}
	s := &System{
		shards: make([]*Client, len(urls)),
		urls:   append([]string(nil), urls...),
		index:  make(map[string]int, len(urls)),
	}
	for i, u := range urls {
		if _, dup := s.index[u]; dup {
			return nil, fmt.Errorf("transport: duplicate shard URL %q", u)
		}
		s.index[u] = i
		s.shards[i] = NewClient(u, hc)
	}
	ring, err := dht.NewBalancedRing(dht.DefaultVNodes, urls...)
	if err != nil {
		return nil, err
	}
	s.ring = ring
	return s, nil
}

// Shards returns the number of distributors behind the system.
func (s *System) Shards() int { return len(s.shards) }

// Shard returns the i'th shard's client (config order), for tools that
// need to address one distributor directly.
func (s *System) Shard(i int) *Client { return s.shards[i] }

// URLs returns the shard base URLs in config order.
func (s *System) URLs() []string { return append([]string(nil), s.urls...) }

// Location identifies the shard that owns one ⟨client, filename⟩ pair.
type Location struct {
	Key      uint64 `json:"key"`   // ring position of the file
	Shard    int    `json:"shard"` // index into the config-order shard list
	ShardURL string `json:"shard_url"`
}

// Locate resolves the owning shard of a file without touching the
// network — the routing decision every data op makes, exposed for
// debugging (cloudctl locate).
func (s *System) Locate(client, filename string) (Location, error) {
	key := dht.FileKey(client, filename)
	name, err := s.ring.Successor(key)
	if err != nil {
		return Location{}, err
	}
	i := s.index[name]
	return Location{Key: key, Shard: i, ShardURL: s.urls[i]}, nil
}

// owner returns the client of the shard owning ⟨client, filename⟩.
func (s *System) owner(client, filename string) (*Client, error) {
	loc, err := s.Locate(client, filename)
	if err != nil {
		return nil, err
	}
	return s.shards[loc.Shard], nil
}

// eachShard runs fn against every shard and joins the failures.
func (s *System) eachShard(fn func(i int, c *Client) error) error {
	var errs []error
	for i, c := range s.shards {
		if err := fn(i, c); err != nil {
			errs = append(errs, fmt.Errorf("shard %d (%s): %w", i, s.urls[i], err))
		}
	}
	return errors.Join(errs...)
}

// RegisterClient creates the account on every shard: files of one
// client hash across the whole ring, so each shard must know it. The
// fan-out has no atomicity — a shard that is down stays unregistered
// and rejects that client's uploads until repaired — so a shard that
// already knows the client (core.ErrExists) counts as success: callers
// repair a partial registration by simply re-issuing the call once the
// missing shard is back (the scrub-style reconciliation for ROADMAP's
// cross-shard gap). Real failures keep their "shard %d (url)" prefix so
// the caller knows exactly which shard needs the retry.
func (s *System) RegisterClient(name string) error {
	return s.eachShard(func(_ int, c *Client) error {
		return idempotent(c.RegisterClient(name))
	})
}

// AddPassword registers the ⟨password, PL⟩ pair on every shard, with
// the same idempotent-repair contract as RegisterClient: shards that
// already hold the password acknowledge instead of failing the fan-out.
func (s *System) AddPassword(client, password string, pl privacy.Level) error {
	return s.eachShard(func(_ int, c *Client) error {
		return idempotent(c.AddPassword(client, password, pl))
	})
}

// idempotent maps "already exists" to success for namespace-wide
// mutations whose goal state is presence, not creation.
func idempotent(err error) error {
	if errors.Is(err, core.ErrExists) {
		return nil
	}
	return err
}

// Upload ships a file to its owning shard.
func (s *System) Upload(client, password, filename string, data []byte, pl privacy.Level, opts UploadOptions) (core.FileInfo, error) {
	c, err := s.owner(client, filename)
	if err != nil {
		return core.FileInfo{}, err
	}
	return c.Upload(client, password, filename, data, pl, opts)
}

// UploadFrom streams a file to its owning shard.
func (s *System) UploadFrom(client, password, filename string, r io.Reader, pl privacy.Level, opts UploadOptions) (core.FileInfo, error) {
	c, err := s.owner(client, filename)
	if err != nil {
		return core.FileInfo{}, err
	}
	return c.UploadFrom(client, password, filename, r, pl, opts)
}

// GetChunk retrieves one chunk from the owning shard.
func (s *System) GetChunk(client, password, filename string, serial int) ([]byte, error) {
	c, err := s.owner(client, filename)
	if err != nil {
		return nil, err
	}
	return c.GetChunk(client, password, filename, serial)
}

// GetFile retrieves a whole file from the owning shard.
func (s *System) GetFile(client, password, filename string) ([]byte, error) {
	c, err := s.owner(client, filename)
	if err != nil {
		return nil, err
	}
	return c.GetFile(client, password, filename)
}

// GetFileTo streams a whole file from the owning shard.
func (s *System) GetFileTo(w io.Writer, client, password, filename string) (int64, error) {
	c, err := s.owner(client, filename)
	if err != nil {
		return 0, err
	}
	return c.GetFileTo(w, client, password, filename)
}

// GetSnapshot retrieves a chunk's snapshot from the owning shard.
func (s *System) GetSnapshot(client, password, filename string, serial int) ([]byte, error) {
	c, err := s.owner(client, filename)
	if err != nil {
		return nil, err
	}
	return c.GetSnapshot(client, password, filename, serial)
}

// GetRange retrieves a byte range from the owning shard.
func (s *System) GetRange(client, password, filename string, offset, length int) ([]byte, error) {
	c, err := s.owner(client, filename)
	if err != nil {
		return nil, err
	}
	return c.GetRange(client, password, filename, offset, length)
}

// UpdateChunk rewrites one chunk on the owning shard.
func (s *System) UpdateChunk(client, password, filename string, serial int, data []byte) error {
	c, err := s.owner(client, filename)
	if err != nil {
		return err
	}
	return c.UpdateChunk(client, password, filename, serial, data)
}

// RemoveChunk deletes one chunk on the owning shard.
func (s *System) RemoveChunk(client, password, filename string, serial int) error {
	c, err := s.owner(client, filename)
	if err != nil {
		return err
	}
	return c.RemoveChunk(client, password, filename, serial)
}

// RemoveFile deletes a file on its owning shard.
func (s *System) RemoveFile(client, password, filename string) error {
	c, err := s.owner(client, filename)
	if err != nil {
		return err
	}
	return c.RemoveFile(client, password, filename)
}

// ChunkCount asks the owning shard how many chunks a file has.
func (s *System) ChunkCount(client, password, filename string) (int, error) {
	c, err := s.owner(client, filename)
	if err != nil {
		return 0, err
	}
	return c.ChunkCount(client, password, filename)
}

// Scrub runs a parity scrub on every shard and sums the reports.
func (s *System) Scrub() (core.ScrubReport, error) {
	var total core.ScrubReport
	err := s.eachShard(func(_ int, c *Client) error {
		rep, err := c.Scrub()
		if err != nil {
			return err
		}
		total.ChunksChecked += rep.ChunksChecked
		total.Healthy += rep.Healthy
		total.Repaired += rep.Repaired
		total.Unrepairable += rep.Unrepairable
		total.Skipped += rep.Skipped
		total.ParityChecked += rep.ParityChecked
		total.ParityRepaired += rep.ParityRepaired
		total.ParityUnrepairable += rep.ParityUnrepairable
		total.ParitySkipped += rep.ParitySkipped
		return nil
	})
	return total, err
}

// Stats sums placement statistics across shards. PerProvider counts
// concatenate in shard order: each shard owns its own provider fleet,
// so the indices are per-shard, not a shared space.
func (s *System) Stats() (core.Stats, error) {
	var total core.Stats
	err := s.eachShard(func(_ int, c *Client) error {
		st, err := c.Stats()
		if err != nil {
			return err
		}
		total.Clients = max(total.Clients, st.Clients)
		total.Files += st.Files
		total.Chunks += st.Chunks
		total.ParityShards += st.ParityShards
		total.MirrorShards += st.MirrorShards
		total.Snapshots += st.Snapshots
		total.Stripes += st.Stripes
		total.PerProvider = append(total.PerProvider, st.PerProvider...)
		return nil
	})
	return total, err
}

// Health succeeds only when every shard is reachable and healthy.
func (s *System) Health() error {
	return s.eachShard(func(_ int, c *Client) error { return c.Health() })
}
