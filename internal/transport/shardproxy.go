package transport

import (
	"io"
	"net/http"

	"repro/internal/privacy"
	"repro/internal/raid"
)

// ShardProxy serves the DistributorServer wire surface in front of a
// sharded System: clients keep speaking the single-distributor protocol
// while every data operation is routed to the shard owning its
// ⟨client, filename⟩ key. This is the deployment shape for clients that
// cannot embed the router; anything that can should use System directly
// and skip the extra hop. Account operations fan out, aggregate
// endpoints merge across shards, and the streaming endpoints forward
// raw bodies end-to-end so the proxy never materializes a large object.
type ShardProxy struct {
	sys *System
	mux *http.ServeMux
	// streamHTTP has no overall timeout: large-object streams are
	// legitimately long-lived. Connection reuse still comes from the
	// shared pooled transport.
	streamHTTP *http.Client
}

// NewShardProxy builds the proxy handler over a sharded system.
func NewShardProxy(sys *System) *ShardProxy {
	p := &ShardProxy{
		sys:        sys,
		mux:        http.NewServeMux(),
		streamHTTP: &http.Client{Transport: sharedTransport},
	}
	p.mux.HandleFunc("POST /v1/clients", p.registerClient)
	p.mux.HandleFunc("POST /v1/passwords", p.addPassword)
	p.mux.HandleFunc("POST /v1/upload", p.upload)
	p.mux.HandleFunc("POST /v1/get_chunk", p.getChunk)
	p.mux.HandleFunc("POST /v1/get_file", p.getFile)
	p.mux.HandleFunc("POST /v1/get_snapshot", p.getSnapshot)
	p.mux.HandleFunc("POST /v1/update_chunk", p.updateChunk)
	p.mux.HandleFunc("POST /v1/remove_chunk", p.removeChunk)
	p.mux.HandleFunc("POST /v1/remove_file", p.removeFile)
	p.mux.HandleFunc("POST /v1/chunk_count", p.chunkCount)
	p.mux.HandleFunc("POST /v1/get_range", p.getRange)
	p.mux.HandleFunc("POST /v1/stream/upload", p.forwardStream)
	p.mux.HandleFunc("GET /v1/stream/file", p.forwardStream)
	p.mux.HandleFunc("POST /v1/admin/scrub", p.scrub)
	p.mux.HandleFunc("GET /v1/stats", p.stats)
	p.mux.HandleFunc("GET /v1/health", p.health)
	p.mux.HandleFunc("GET /v1/locate", p.locate)
	return p
}

// ServeHTTP implements http.Handler.
func (p *ShardProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mux.ServeHTTP(w, r)
}

// proxyErr maps an error from the downstream shard (already a core
// error, reconstructed by the shard's Client) back onto the wire.
func proxyErr(w http.ResponseWriter, err error) {
	http.Error(w, err.Error(), coreStatus(err))
}

func (p *ShardProxy) registerClient(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[clientReq](w, r)
	if !ok {
		return
	}
	if err := p.sys.RegisterClient(req.Name); err != nil {
		proxyErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (p *ShardProxy) addPassword(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[passwordReq](w, r)
	if !ok {
		return
	}
	if err := p.sys.AddPassword(req.Client, req.Password, privacy.Level(req.PL)); err != nil {
		proxyErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (p *ShardProxy) upload(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[uploadReq](w, r)
	if !ok {
		return
	}
	info, err := p.sys.Upload(req.Client, req.Password, req.Filename, req.Data, privacy.Level(req.PL), UploadOptions{
		Assurance:       raid.Level(req.Assurance),
		NoParity:        req.NoParity,
		MisleadFraction: req.MisleadFraction,
		MisleadLines:    req.MisleadLines,
		Replicas:        req.Replicas,
		EncryptKey:      req.EncryptKey,
	})
	if err != nil {
		proxyErr(w, err)
		return
	}
	writeJSON(w, info)
}

func (p *ShardProxy) getChunk(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[chunkReq](w, r)
	if !ok {
		return
	}
	data, err := p.sys.GetChunk(req.Client, req.Password, req.Filename, req.Serial)
	if err != nil {
		proxyErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (p *ShardProxy) getFile(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[fileReq](w, r)
	if !ok {
		return
	}
	data, err := p.sys.GetFile(req.Client, req.Password, req.Filename)
	if err != nil {
		proxyErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (p *ShardProxy) getSnapshot(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[chunkReq](w, r)
	if !ok {
		return
	}
	data, err := p.sys.GetSnapshot(req.Client, req.Password, req.Filename, req.Serial)
	if err != nil {
		proxyErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (p *ShardProxy) updateChunk(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[chunkReq](w, r)
	if !ok {
		return
	}
	if err := p.sys.UpdateChunk(req.Client, req.Password, req.Filename, req.Serial, req.Data); err != nil {
		proxyErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (p *ShardProxy) removeChunk(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[chunkReq](w, r)
	if !ok {
		return
	}
	if err := p.sys.RemoveChunk(req.Client, req.Password, req.Filename, req.Serial); err != nil {
		proxyErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (p *ShardProxy) removeFile(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[fileReq](w, r)
	if !ok {
		return
	}
	if err := p.sys.RemoveFile(req.Client, req.Password, req.Filename); err != nil {
		proxyErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (p *ShardProxy) chunkCount(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[fileReq](w, r)
	if !ok {
		return
	}
	n, err := p.sys.ChunkCount(req.Client, req.Password, req.Filename)
	if err != nil {
		proxyErr(w, err)
		return
	}
	writeJSON(w, map[string]int{"chunks": n})
}

func (p *ShardProxy) getRange(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[rangeReq](w, r)
	if !ok {
		return
	}
	data, err := p.sys.GetRange(req.Client, req.Password, req.Filename, req.Offset, req.Length)
	if err != nil {
		proxyErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (p *ShardProxy) scrub(w http.ResponseWriter, _ *http.Request) {
	rep, err := p.sys.Scrub()
	if err != nil {
		proxyErr(w, err)
		return
	}
	writeJSON(w, rep)
}

func (p *ShardProxy) stats(w http.ResponseWriter, _ *http.Request) {
	st, err := p.sys.Stats()
	if err != nil {
		proxyErr(w, err)
		return
	}
	writeJSON(w, st)
}

// health merges every shard's health: overall status degrades if any
// shard does (or is unreachable), provider and replication rows
// concatenate in shard order.
func (p *ShardProxy) health(w http.ResponseWriter, _ *http.Request) {
	out := HealthReport{Status: "ok"}
	for i := 0; i < p.sys.Shards(); i++ {
		rep, err := p.sys.Shard(i).HealthReport()
		if err != nil {
			out.Status = "degraded"
			continue
		}
		if rep.Status != "ok" {
			out.Status = "degraded"
		}
		out.Providers = append(out.Providers, rep.Providers...)
		out.Replication = append(out.Replication, rep.Replication...)
	}
	writeJSON(w, out)
}

// locate is GET /v1/locate?client=C&filename=F: the router's decision
// for one file, as JSON. Purely local — no shard round-trip.
func (p *ShardProxy) locate(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	loc, err := p.sys.Locate(q.Get("client"), q.Get("filename"))
	if err != nil {
		proxyErr(w, err)
		return
	}
	writeJSON(w, loc)
}

// forwardStream relays a streaming request verbatim to the owning
// shard: same path, query and auth headers, with both bodies streamed —
// the proxy holds one transfer buffer, never the object. A mid-body
// upstream failure aborts the downstream connection (chunked encoding's
// implicit end marker is how truncation stays detectable end-to-end).
func (p *ShardProxy) forwardStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	loc, err := p.sys.Locate(q.Get("client"), q.Get("filename"))
	if err != nil {
		proxyErr(w, err)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method,
		p.sys.urls[loc.Shard]+r.URL.Path+"?"+r.URL.RawQuery, r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	for _, h := range []string{headerPassword, headerEncryptKey, "Content-Type"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	resp, err := p.streamHTTP.Do(req)
	if err != nil {
		http.Error(w, "shard proxy: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		panic(http.ErrAbortHandler)
	}
}
