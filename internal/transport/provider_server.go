// Package transport puts the paper's architecture on the network: cloud
// providers and the Cloud Data Distributor become HTTP/JSON services, so
// the system runs as real client/server processes the way the paper's
// prototype did ("We have used PCs ... as Cloud Providers. Again we have
// used PCs ... as Cloud Data Distributor").
//
// The provider API mirrors the SOAP/REST-style S3 interface the paper
// cites: put/get/delete keyed by virtual id, plus introspection and
// failure-injection endpoints used by the evaluation harness.
package transport

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/provider"
)

// maxBlobBytes bounds request bodies to keep a misbehaving client from
// exhausting a provider's memory.
const maxBlobBytes = 64 << 20

// ProviderServer exposes one provider over HTTP.
type ProviderServer struct {
	p   provider.Provider
	mux *http.ServeMux
}

// NewProviderServer wraps a provider.
func NewProviderServer(p provider.Provider) *ProviderServer {
	s := &ProviderServer{p: p, mux: http.NewServeMux()}
	s.mux.HandleFunc("PUT /v1/chunks/{key}", s.putChunk)
	s.mux.HandleFunc("GET /v1/chunks/{key}", s.getChunk)
	s.mux.HandleFunc("DELETE /v1/chunks/{key}", s.deleteChunk)
	s.mux.HandleFunc("GET /v1/info", s.info)
	s.mux.HandleFunc("GET /v1/keys", s.keys)
	s.mux.HandleFunc("GET /v1/dump", s.dump)
	s.mux.HandleFunc("GET /v1/usage", s.usage)
	s.mux.HandleFunc("GET /v1/health", s.health)
	s.mux.HandleFunc("POST /v1/outage", s.outage)
	return s
}

// ServeHTTP implements http.Handler.
func (s *ProviderServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func providerStatus(err error) int {
	switch {
	case errors.Is(err, provider.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, provider.ErrOutage):
		return http.StatusServiceUnavailable
	case errors.Is(err, provider.ErrInjected):
		return http.StatusBadGateway
	default:
		return http.StatusInternalServerError
	}
}

func (s *ProviderServer) putChunk(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBlobBytes+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxBlobBytes {
		http.Error(w, "blob too large", http.StatusRequestEntityTooLarge)
		return
	}
	if err := s.p.Put(key, body); err != nil {
		http.Error(w, err.Error(), providerStatus(err))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *ProviderServer) getChunk(w http.ResponseWriter, r *http.Request) {
	data, err := s.p.Get(r.PathValue("key"))
	if err != nil {
		http.Error(w, err.Error(), providerStatus(err))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (s *ProviderServer) deleteChunk(w http.ResponseWriter, r *http.Request) {
	if err := s.p.Delete(r.PathValue("key")); err != nil {
		http.Error(w, err.Error(), providerStatus(err))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// infoDTO is the wire form of provider.Info.
type infoDTO struct {
	Name string `json:"name"`
	PL   int    `json:"pl"`
	CL   int    `json:"cl"`
}

func (s *ProviderServer) info(w http.ResponseWriter, _ *http.Request) {
	i := s.p.Info()
	writeJSON(w, infoDTO{Name: i.Name, PL: int(i.PL), CL: int(i.CL)})
}

func (s *ProviderServer) keys(w http.ResponseWriter, _ *http.Request) {
	keys := s.p.Keys()
	if keys == nil {
		keys = []string{}
	}
	writeJSON(w, keys)
}

func (s *ProviderServer) dump(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.p.Dump())
}

func (s *ProviderServer) usage(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.p.Usage())
}

func (s *ProviderServer) health(w http.ResponseWriter, _ *http.Request) {
	if s.p.Down() {
		http.Error(w, "outage", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *ProviderServer) outage(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Down bool `json:"down"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.p.SetOutage(req.Down)
	w.WriteHeader(http.StatusNoContent)
}
