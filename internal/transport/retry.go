package transport

import (
	"math/rand"
	"sync"
	"time"
)

// netRetries bounds retry attempts for idempotent requests that fail at
// the network layer, and netRetryBase is the first backoff step.
const (
	netRetries   = 3
	netRetryBase = 50 * time.Millisecond
)

// retrier provides jittered exponential backoff with an injectable
// sleep, shared by the distributor and provider clients.
type retrier struct {
	sleep func(time.Duration) // injectable for tests

	mu     sync.Mutex
	jitter *rand.Rand
}

func newRetrier() *retrier {
	return &retrier{
		sleep:  time.Sleep,
		jitter: rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// backoff returns the jittered exponential delay before retry attempt n
// (0-based): base·2ⁿ plus up to one extra base, so simultaneous clients
// don't retry in lockstep.
func (r *retrier) backoff(n int) time.Duration {
	r.mu.Lock()
	j := time.Duration(r.jitter.Int63n(int64(netRetryBase)))
	r.mu.Unlock()
	return netRetryBase<<uint(n) + j
}
