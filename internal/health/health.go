// Package health tracks per-provider success/failure history and gates
// writes through a three-state circuit breaker. The paper motivates the
// whole architecture with the April 2011 EC2 outage; this package is the
// distributor-side machinery that notices such an outage from its own
// operation outcomes (rather than trusting a provider's self-reported
// status) and steers placement and write failover away from the failing
// provider until it proves itself healthy again.
//
// The breaker per provider moves Closed → Open after either a run of
// consecutive failures or a windowed failure ratio, Open → HalfOpen after
// a cooldown (admitting exactly one probe write), and HalfOpen → Closed
// on probe success. Reads are never gated — they are only recorded — so a
// successful read against an Open provider also closes the circuit
// immediately: the read acted as a free probe.
package health

import (
	"sync"
	"time"
)

// State is one circuit-breaker position.
type State int

// Breaker states.
const (
	// Closed: the provider is considered healthy; operations flow.
	Closed State = iota
	// Open: the provider is considered down; gated writes are rejected
	// and placement skips it.
	Open
	// HalfOpen: the cooldown elapsed; exactly one probe write may pass.
	HalfOpen
)

// String renders the state for logs and the health API.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Config tunes the tracker. Zero values select the defaults noted on each
// field.
type Config struct {
	// FailureThreshold is the consecutive-failure count that trips the
	// breaker regardless of the window (default 5).
	FailureThreshold int
	// Window is the number of most recent outcomes kept per provider for
	// the ratio rule (default 20).
	Window int
	// FailureRatio trips the breaker when the windowed failure fraction
	// reaches it (default 0.6).
	FailureRatio float64
	// MinSamples is the minimum number of windowed outcomes before the
	// ratio rule applies, so a single early failure cannot trip a fresh
	// breaker (default 10).
	MinSamples int
	// Cooldown is how long an Open circuit rejects gated writes before
	// admitting a half-open probe (default 30s).
	Cooldown time.Duration
	// Clock supplies the current time; nil selects time.Now. Tests inject
	// a virtual clock, mirroring provider.Options.Sleep.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.FailureThreshold == 0 {
		c.FailureThreshold = 5
	}
	if c.Window == 0 {
		c.Window = 20
	}
	if c.FailureRatio == 0 {
		c.FailureRatio = 0.6
	}
	if c.MinSamples == 0 {
		c.MinSamples = 10
	}
	if c.Cooldown == 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Status is one provider's externally visible health snapshot.
type Status struct {
	State               State
	Successes           int64
	Failures            int64
	ConsecutiveFailures int
	Opens               int64
	WindowFailures      int
	WindowSamples       int
	// LatencyEWMA is the exponentially weighted moving average of the
	// provider's successful-operation latency; 0 until the first sample.
	LatencyEWMA time.Duration
}

// breaker is the per-provider state.
type breaker struct {
	state       State
	openedAt    time.Time
	probing     bool // a half-open probe is in flight
	consecFails int

	successes int64
	failures  int64
	opens     int64

	window []bool // ring buffer of outcomes, true = success
	wHead  int
	wCount int
	wFails int

	// ewmaNs is the latency EWMA in nanoseconds (float to avoid the
	// truncation drift of repeated integer smoothing); 0 = no samples.
	ewmaNs float64
}

// Tracker accounts success/failure per provider and runs one breaker
// each. All methods are safe for concurrent use.
type Tracker struct {
	cfg Config

	mu             sync.Mutex
	provs          []breaker
	totalOpens     int64
	probeSuccesses int64
}

// NewTracker builds a tracker for n providers.
func NewTracker(n int, cfg Config) *Tracker {
	cfg = cfg.withDefaults()
	t := &Tracker{cfg: cfg, provs: make([]breaker, n)}
	for i := range t.provs {
		t.provs[i].window = make([]bool, cfg.Window)
	}
	return t
}

func (t *Tracker) valid(i int) bool { return i >= 0 && i < len(t.provs) }

// Record feeds one operation outcome into provider i's breaker. A success
// against an Open or HalfOpen circuit closes it: the operation proved the
// provider back. A failure in HalfOpen re-opens it; a failure in Closed
// trips it once either the consecutive-failure threshold or the windowed
// failure ratio is reached.
func (t *Tracker) Record(i int, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.valid(i) {
		return
	}
	b := &t.provs[i]
	b.push(ok)
	if ok {
		b.successes++
		b.consecFails = 0
		switch b.state {
		case HalfOpen:
			t.probeSuccesses++
			fallthrough
		case Open:
			b.state = Closed
			b.probing = false
		}
		return
	}
	b.failures++
	b.consecFails++
	switch b.state {
	case HalfOpen:
		// The probe failed: back to Open for another cooldown.
		b.state = Open
		b.probing = false
		b.openedAt = t.cfg.Clock()
		b.opens++
		t.totalOpens++
	case Closed:
		if b.consecFails >= t.cfg.FailureThreshold ||
			(b.wCount >= t.cfg.MinSamples &&
				float64(b.wFails)/float64(b.wCount) >= t.cfg.FailureRatio) {
			b.state = Open
			b.openedAt = t.cfg.Clock()
			b.opens++
			t.totalOpens++
		}
	}
}

// latencyAlpha is the EWMA smoothing factor: each new sample contributes
// a quarter, so the average tracks a provider's drift within a handful of
// operations without whipsawing on one outlier.
const latencyAlpha = 0.25

// RecordLatency feeds one successful operation's service time into
// provider i's latency EWMA. Callers only report successes: a fast
// failure (connection refused, circuit open) says nothing about how long
// the provider takes to actually serve bytes, and letting it drag the
// average down would make hedged reads fire later exactly when the
// provider is struggling.
func (t *Tracker) RecordLatency(i int, d time.Duration) {
	if d <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.valid(i) {
		return
	}
	b := &t.provs[i]
	if b.ewmaNs == 0 {
		b.ewmaNs = float64(d)
		return
	}
	b.ewmaNs = (1-latencyAlpha)*b.ewmaNs + latencyAlpha*float64(d)
}

// LatencyEWMA returns provider i's smoothed successful-operation latency,
// or 0 when no sample has been recorded yet.
func (t *Tracker) LatencyEWMA(i int) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.valid(i) {
		return 0
	}
	return time.Duration(t.provs[i].ewmaNs)
}

// push records one outcome in the sliding window.
func (b *breaker) push(ok bool) {
	if len(b.window) == 0 {
		return
	}
	if b.wCount == len(b.window) {
		// Evict the oldest outcome.
		if !b.window[b.wHead] {
			b.wFails--
		}
	} else {
		b.wCount++
	}
	b.window[b.wHead] = ok
	if !ok {
		b.wFails++
	}
	b.wHead = (b.wHead + 1) % len(b.window)
}

// Allow reports whether a gated write to provider i may proceed,
// consuming the single half-open probe slot when the cooldown has
// elapsed. Callers that get true while the circuit was Open are the
// probe; their Record outcome decides Closed vs re-Open.
func (t *Tracker) Allow(i int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.valid(i) {
		return false
	}
	b := &t.provs[i]
	switch b.state {
	case Closed:
		return true
	case Open:
		if t.cfg.Clock().Sub(b.openedAt) < t.cfg.Cooldown {
			return false
		}
		b.state = HalfOpen
		b.probing = true
		return true
	default: // HalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Available reports whether placement should consider provider i, without
// consuming the probe slot: Closed circuits, Open circuits past their
// cooldown (the subsequent gated write becomes the probe), and HalfOpen
// circuits with no probe in flight.
func (t *Tracker) Available(i int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.valid(i) {
		return false
	}
	b := &t.provs[i]
	switch b.state {
	case Closed:
		return true
	case Open:
		return t.cfg.Clock().Sub(b.openedAt) >= t.cfg.Cooldown
	default: // HalfOpen
		return !b.probing
	}
}

// State returns provider i's current breaker state.
func (t *Tracker) State(i int) State {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.valid(i) {
		return Closed
	}
	return t.provs[i].state
}

// Snapshot returns every provider's status, indexed by fleet position.
func (t *Tracker) Snapshot() []Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Status, len(t.provs))
	for i := range t.provs {
		b := &t.provs[i]
		out[i] = Status{
			State:               b.state,
			Successes:           b.successes,
			Failures:            b.failures,
			ConsecutiveFailures: b.consecFails,
			Opens:               b.opens,
			WindowFailures:      b.wFails,
			WindowSamples:       b.wCount,
			LatencyEWMA:         time.Duration(b.ewmaNs),
		}
	}
	return out
}

// Totals returns the fleet-wide count of circuit-open events and
// successful half-open probes.
func (t *Tracker) Totals() (opens, probeSuccesses int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.totalOpens, t.probeSuccesses
}
