package health

import (
	"testing"
	"time"
)

// virtualClock is a manually advanced clock, the deterministic stand-in
// for time.Now in breaker tests.
type virtualClock struct {
	now time.Time
}

func (c *virtualClock) Now() time.Time          { return c.now }
func (c *virtualClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func newTestTracker(n int) (*Tracker, *virtualClock) {
	clk := &virtualClock{now: time.Unix(1_000_000, 0)}
	t := NewTracker(n, Config{
		FailureThreshold: 3,
		Window:           10,
		FailureRatio:     0.5,
		MinSamples:       6,
		Cooldown:         30 * time.Second,
		Clock:            clk.Now,
	})
	return t, clk
}

func TestClosedUntilConsecutiveThreshold(t *testing.T) {
	tr, _ := newTestTracker(2)
	tr.Record(0, false)
	tr.Record(0, false)
	if got := tr.State(0); got != Closed {
		t.Fatalf("state after 2 failures = %v, want closed", got)
	}
	if !tr.Allow(0) || !tr.Available(0) {
		t.Fatal("closed circuit must allow writes and placement")
	}
	tr.Record(0, false) // third consecutive failure trips it
	if got := tr.State(0); got != Open {
		t.Fatalf("state after threshold = %v, want open", got)
	}
	if tr.Allow(0) || tr.Available(0) {
		t.Fatal("open circuit must reject writes and placement")
	}
	// Provider 1 is untouched.
	if got := tr.State(1); got != Closed {
		t.Fatalf("neighbor state = %v, want closed", got)
	}
}

func TestSuccessResetsConsecutiveCount(t *testing.T) {
	tr, _ := newTestTracker(1)
	for i := 0; i < 10; i++ {
		tr.Record(0, false)
		tr.Record(0, false)
		tr.Record(0, true)
	}
	// 2 failures + 1 success repeated: consecutive never reaches 3, and
	// the window ratio (2/3 ≈ 0.67 ≥ 0.5)... trips via the ratio rule
	// once MinSamples accumulate — verify that path separately; here use
	// a pattern below both thresholds.
	tr2, _ := newTestTracker(1)
	for i := 0; i < 10; i++ {
		tr2.Record(0, false)
		tr2.Record(0, true)
		tr2.Record(0, true)
	}
	if got := tr2.State(0); got != Closed {
		t.Fatalf("state under 1/3 failure ratio = %v, want closed", got)
	}
}

func TestWindowedRatioTrips(t *testing.T) {
	tr, _ := newTestTracker(1)
	// Alternate so consecutive failures never reach the threshold, but
	// the window fills to a 50% failure ratio.
	for i := 0; i < 6; i++ {
		tr.Record(0, i%2 == 0) // success, fail, success, fail, ...
	}
	if got := tr.State(0); got != Open {
		t.Fatalf("state at ratio 0.5 over %d samples = %v, want open", 6, got)
	}
}

func TestRatioNeedsMinSamples(t *testing.T) {
	tr, _ := newTestTracker(1)
	// 1 success + 2 failures = 2/3 ratio but only 3 samples (< 6) and
	// only 2 consecutive failures (< 3): must stay closed.
	tr.Record(0, true)
	tr.Record(0, false)
	tr.Record(0, false)
	if got := tr.State(0); got != Closed {
		t.Fatalf("state with 3 samples = %v, want closed", got)
	}
}

func TestHalfOpenSingleProbeThenClose(t *testing.T) {
	tr, clk := newTestTracker(1)
	for i := 0; i < 3; i++ {
		tr.Record(0, false)
	}
	if tr.Allow(0) {
		t.Fatal("open circuit inside cooldown must reject")
	}
	clk.Advance(29 * time.Second)
	if tr.Allow(0) {
		t.Fatal("cooldown not elapsed yet")
	}
	clk.Advance(2 * time.Second)
	if !tr.Available(0) {
		t.Fatal("placement must consider the provider once cooldown elapsed")
	}
	if !tr.Allow(0) {
		t.Fatal("first Allow after cooldown must admit the probe")
	}
	if got := tr.State(0); got != HalfOpen {
		t.Fatalf("state after probe admission = %v, want half-open", got)
	}
	// Single-probe guarantee: while the probe is in flight, nothing else
	// passes.
	if tr.Allow(0) {
		t.Fatal("second Allow during probe must reject")
	}
	if tr.Available(0) {
		t.Fatal("placement must skip a provider with a probe in flight")
	}
	tr.Record(0, true) // probe succeeds
	if got := tr.State(0); got != Closed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
	if !tr.Allow(0) {
		t.Fatal("closed circuit must allow writes again")
	}
	opens, probes := tr.Totals()
	if opens != 1 || probes != 1 {
		t.Fatalf("totals = %d opens, %d probe successes; want 1, 1", opens, probes)
	}
}

func TestHalfOpenProbeFailureReopens(t *testing.T) {
	tr, clk := newTestTracker(1)
	for i := 0; i < 3; i++ {
		tr.Record(0, false)
	}
	clk.Advance(31 * time.Second)
	if !tr.Allow(0) {
		t.Fatal("probe not admitted")
	}
	tr.Record(0, false) // probe fails
	if got := tr.State(0); got != Open {
		t.Fatalf("state after probe failure = %v, want open", got)
	}
	if tr.Allow(0) {
		t.Fatal("re-opened circuit must reject inside the fresh cooldown")
	}
	// The cooldown restarts from the re-open.
	clk.Advance(31 * time.Second)
	if !tr.Allow(0) {
		t.Fatal("second probe not admitted after fresh cooldown")
	}
	tr.Record(0, true)
	if got := tr.State(0); got != Closed {
		t.Fatalf("state after second probe = %v, want closed", got)
	}
	opens, probes := tr.Totals()
	if opens != 2 || probes != 1 {
		t.Fatalf("totals = %d opens, %d probe successes; want 2, 1", opens, probes)
	}
}

func TestUngatedSuccessWhileOpenCloses(t *testing.T) {
	// Reads are recorded but never gated; a successful read against an
	// Open provider proves it back without waiting out the cooldown.
	tr, _ := newTestTracker(1)
	for i := 0; i < 3; i++ {
		tr.Record(0, false)
	}
	if got := tr.State(0); got != Open {
		t.Fatalf("state = %v, want open", got)
	}
	tr.Record(0, true)
	if got := tr.State(0); got != Closed {
		t.Fatalf("state after ungated success = %v, want closed", got)
	}
	if !tr.Allow(0) {
		t.Fatal("recovered circuit must allow writes")
	}
}

func TestSnapshotCounts(t *testing.T) {
	tr, _ := newTestTracker(2)
	tr.Record(0, true)
	tr.Record(0, false)
	tr.Record(1, true)
	snap := tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	if snap[0].Successes != 1 || snap[0].Failures != 1 || snap[0].ConsecutiveFailures != 1 {
		t.Fatalf("snap[0] = %+v", snap[0])
	}
	if snap[0].WindowSamples != 2 || snap[0].WindowFailures != 1 {
		t.Fatalf("snap[0] window = %+v", snap[0])
	}
	if snap[1].Failures != 0 || snap[1].State != Closed {
		t.Fatalf("snap[1] = %+v", snap[1])
	}
}

func TestWindowEviction(t *testing.T) {
	tr, _ := newTestTracker(1)
	// Fill the 10-slot window with failures interleaved so it does not
	// trip, then push successes until the failures age out.
	tr2 := NewTracker(1, Config{
		FailureThreshold: 100, // consecutive rule effectively off
		Window:           4,
		FailureRatio:     0.75,
		MinSamples:       4,
		Cooldown:         time.Minute,
		Clock:            func() time.Time { return time.Unix(0, 0) },
	})
	_ = tr
	tr2.Record(0, false)
	tr2.Record(0, false)
	tr2.Record(0, true)
	tr2.Record(0, true)
	if got := tr2.State(0); got != Closed {
		t.Fatalf("2/4 window = %v, want closed", got)
	}
	// Two more successes evict the two failures.
	tr2.Record(0, true)
	tr2.Record(0, true)
	snap := tr2.Snapshot()[0]
	if snap.WindowFailures != 0 || snap.WindowSamples != 4 {
		t.Fatalf("window after eviction = %+v", snap)
	}
	// Now three failures out of four: ratio 0.75 trips.
	tr2.Record(0, false)
	tr2.Record(0, false)
	tr2.Record(0, false)
	if got := tr2.State(0); got != Open {
		t.Fatalf("3/4 window = %v, want open", got)
	}
}

func TestStateString(t *testing.T) {
	if Closed.String() != "closed" || Open.String() != "open" || HalfOpen.String() != "half-open" {
		t.Fatal("state strings wrong")
	}
}

func TestLatencyEWMA(t *testing.T) {
	tr := NewTracker(2, Config{})
	if got := tr.LatencyEWMA(0); got != 0 {
		t.Fatalf("EWMA before any sample = %v, want 0", got)
	}
	// First sample seeds the average directly.
	tr.RecordLatency(0, 100*time.Millisecond)
	if got := tr.LatencyEWMA(0); got != 100*time.Millisecond {
		t.Fatalf("EWMA after seed = %v, want 100ms", got)
	}
	// Each further sample contributes a quarter: 0.75*100 + 0.25*200.
	tr.RecordLatency(0, 200*time.Millisecond)
	if got := tr.LatencyEWMA(0); got != 125*time.Millisecond {
		t.Fatalf("EWMA after 200ms sample = %v, want 125ms", got)
	}
	// Non-positive samples and out-of-range indices are ignored.
	tr.RecordLatency(0, 0)
	tr.RecordLatency(0, -time.Second)
	tr.RecordLatency(9, time.Second)
	if got := tr.LatencyEWMA(0); got != 125*time.Millisecond {
		t.Fatalf("EWMA after ignored samples = %v, want 125ms", got)
	}
	if got := tr.LatencyEWMA(1); got != 0 {
		t.Fatalf("untouched provider EWMA = %v, want 0", got)
	}
	if got := tr.LatencyEWMA(9); got != 0 {
		t.Fatalf("out-of-range EWMA = %v, want 0", got)
	}
	// The snapshot carries the same figure.
	if got := tr.Snapshot()[0].LatencyEWMA; got != 125*time.Millisecond {
		t.Fatalf("snapshot EWMA = %v, want 125ms", got)
	}
}
