// Package wal provides the distributor's durability layer: an
// append-only, CRC32C-framed record log plus periodic full-state
// snapshots, laid out as one file pair family in a single directory.
//
// File layout. The active log segment is wal-<base>.log where <base> is
// the LSN (cumulative record count) of its first record; a checkpoint
// writes snap-<lsn>.ckpt via tmp+rename, rotates the log to a fresh
// segment based at that LSN and purges every older segment and snapshot.
// Recovery therefore loads the newest snapshot and replays exactly one
// segment tail.
//
// Frame format. Each record is [len uint32 LE][crc32c uint32 LE][payload];
// the CRC (Castagnoli) covers the payload only. A record cut short by a
// crash is a torn tail: legal at the end of the last segment, truncated
// on open. A complete frame whose CRC does not match is corruption and
// refuses to open with ErrCorrupt — torn writes shorten, they do not
// rewrite history.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy picks when appended records become durable.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every Append returns: a record the caller
	// saw succeed survives any crash.
	SyncAlways SyncPolicy = iota
	// SyncGrouped acknowledges appends immediately and fsyncs in the
	// background every GroupInterval: a crash can lose the last interval's
	// records, in exchange for near-memory append latency.
	SyncGrouped
	// SyncOff never fsyncs explicitly; durability is whenever the OS
	// writes back. A crash can lose everything since the last checkpoint.
	SyncOff
)

// String implements fmt.Stringer with the flag spellings.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncGrouped:
		return "grouped"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses the flag spellings always/grouped/off.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "grouped", "group":
		return SyncGrouped, nil
	case "off", "none":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, grouped or off)", s)
}

// Options tunes a Log.
type Options struct {
	Policy SyncPolicy
	// GroupInterval is the background fsync cadence under SyncGrouped
	// (default 5ms). It is the policy's loss window and its batch size
	// in one knob: a longer interval amortizes each fsync over more
	// commits, a shorter one narrows what a crash can lose.
	GroupInterval time.Duration
	// BugSkipSync plants a lost-commit bug for fault-injection harnesses:
	// Append reports success but the fsync SyncAlways promises is silently
	// skipped, so a crash loses acknowledged records. The simcheck
	// crash-restart oracle exists to catch exactly this class of bug;
	// never set it outside a harness.
	BugSkipSync bool
}

// Errors the recovery scan can report.
var (
	// ErrCorrupt marks a mid-log record whose CRC does not match, a
	// snapshot that fails its checksum, or segments that do not chain.
	// Unlike a torn tail this is not survivable by truncation: history
	// before the tail has been rewritten or lost.
	ErrCorrupt = errors.New("wal: corrupt")
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("wal: closed")
)

const (
	segMagic    = "CDDWAL01"
	snapMagic   = "CDDSNAP1"
	headerLen   = 16 // magic + base LSN
	frameHeader = 8  // len + crc
	// maxRecord bounds one record's payload; appends beyond it fail
	// loudly instead of writing a frame recovery would reject.
	maxRecord = 64 << 20
	// bufFlushBytes caps the user-space append buffer of the grouped and
	// off policies; a buffer past it is written through inline.
	bufFlushBytes = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Recovered is what Open (or ReadAll) reconstructed from the directory.
type Recovered struct {
	// Snapshot is the newest checkpoint's payload, nil when none exists.
	Snapshot []byte
	// SnapshotLSN is the LSN the snapshot covers records below.
	SnapshotLSN uint64
	// Records are the log-tail payloads after the snapshot, in append
	// order.
	Records [][]byte
	// TailTruncated reports that the last segment ended in a torn record
	// (dropped by Open, reported read-only by ReadAll).
	TailTruncated bool
}

// Stats is a point-in-time snapshot of a Log's counters. All fields are
// comparable scalars so harnesses can embed them in == comparisons.
type Stats struct {
	Policy      string
	NextLSN     uint64
	SegmentBase uint64
	// SinceCheckpoint is the record count the active segment holds — the
	// replay cost of a crash right now.
	SinceCheckpoint uint64
	Appended        int64
	Fsyncs          int64
	Checkpoints     int64
	// LastCheckpointUnixNano is wall-clock (0 = never): callers that need
	// deterministic stats must not compare it.
	LastCheckpointUnixNano int64
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use; Append/Checkpoint callers typically already serialize under the
// distributor's table lock.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File
	seg     uint64 // generation of l.f, bumped on every rotation
	segBase uint64 // LSN of the active segment's first record
	nextLSN uint64
	// buf stages frames the grouped/off policies have acknowledged but
	// not yet written to the file — the group-commit batch. Everything
	// in it is inside the documented loss window (ahead of the fsync
	// watermark), so a crash dropping it loses nothing the policy
	// promised to keep.
	buf     []byte
	written int64 // bytes written to the active segment
	synced  int64 // bytes known durable (advanced only by real fsyncs)
	dirty   bool
	closed  bool

	appended    atomic.Int64
	fsyncs      atomic.Int64
	checkpoints atomic.Int64
	lastCkpt    atomic.Int64 // unix nanos of the last durable checkpoint

	// stopFlush/flushDone are set once before the flusher goroutine
	// starts and never reassigned; flushStopped (under mu) guards
	// double-stop.
	stopFlush    chan struct{}
	flushDone    chan struct{}
	flushStopped bool
}

// Open recovers dir (created if missing) and returns an appendable Log
// positioned after the last durable record, plus everything recovered: a
// torn final record is truncated away, a CRC-corrupt record anywhere
// before the tail fails with ErrCorrupt.
func Open(dir string, opts Options) (*Log, Recovered, error) {
	if opts.GroupInterval <= 0 {
		opts.GroupInterval = 5 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovered{}, fmt.Errorf("wal: %w", err)
	}
	rec, lastSeg, tornAt, err := recoverDir(dir)
	if err != nil {
		return nil, Recovered{}, err
	}

	l := &Log{dir: dir, opts: opts}
	if rec.Snapshot != nil {
		if snaps, err := scanFiles(dir, "snap-", ".ckpt"); err == nil && len(snaps) > 0 {
			if fi, err := os.Stat(snaps[len(snaps)-1].path); err == nil {
				l.lastCkpt.Store(fi.ModTime().UnixNano())
			}
		}
	}
	l.nextLSN = rec.SnapshotLSN + uint64(len(rec.Records))

	if lastSeg == "" {
		// Empty directory: start the first segment at the snapshot LSN
		// (zero when there is no snapshot either).
		l.segBase = rec.SnapshotLSN
		if err := l.newSegmentLocked(); err != nil {
			return nil, Recovered{}, err
		}
		return l.start(), rec, nil
	}
	if rec.TailTruncated {
		if err := os.Truncate(lastSeg, tornAt); err != nil {
			return nil, Recovered{}, fmt.Errorf("wal: truncating torn tail of %s: %w", filepath.Base(lastSeg), err)
		}
	}
	f, err := os.OpenFile(lastSeg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, Recovered{}, fmt.Errorf("wal: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, Recovered{}, fmt.Errorf("wal: %w", err)
	}
	base, err := segmentBase(lastSeg)
	if err != nil {
		f.Close()
		return nil, Recovered{}, err
	}
	l.f = f
	l.segBase = base
	l.written = fi.Size()
	l.synced = fi.Size() // everything replayed is on disk by definition
	return l.start(), rec, nil
}

// start launches the grouped-sync flusher when the policy needs one.
func (l *Log) start() *Log {
	if l.opts.Policy == SyncGrouped {
		l.stopFlush = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l
}

// flushLoop runs the group-commit fsync off the append lock: it
// captures (file, segment generation, written watermark) under l.mu,
// fsyncs unlocked so concurrent Appends never stall behind the disk,
// then advances the durable watermark only if the same segment is still
// active. A rotation mid-fsync closes the captured file — os.File makes
// the concurrent Sync/Close safe — and Checkpoint has already made those
// records durable in the snapshot, so the stale result is just dropped.
func (l *Log) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opts.GroupInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stopFlush:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.dirty || l.closed {
				l.mu.Unlock()
				continue
			}
			if err := l.flushBufLocked(); err != nil {
				// Keep dirty set: the buffer is intact, the next tick
				// retries the write.
				l.mu.Unlock()
				continue
			}
			f, seg, written := l.f, l.seg, l.written
			l.dirty = false
			l.mu.Unlock()

			err := f.Sync()

			l.mu.Lock()
			switch {
			case l.closed || l.seg != seg:
				// Rotated or shut down while syncing: the outcome no
				// longer describes the active segment.
			case err != nil:
				l.dirty = true // retry on the next tick
			default:
				l.fsyncs.Add(1)
				if written > l.synced {
					l.synced = written
				}
			}
			l.mu.Unlock()
		}
	}
}

// Append writes one record and makes it durable per the sync policy.
// Under SyncAlways the record hits the disk before Append returns; under
// SyncGrouped/SyncOff it is staged in the append buffer — no syscall on
// the commit path — and a write error surfaces at the next flush (the
// record was inside the loss window either way).
func (l *Log) Append(payload []byte) error {
	if len(payload) > maxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte limit", len(payload), maxRecord)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, payload...)
	l.nextLSN++
	l.appended.Add(1)
	l.dirty = true
	if l.opts.Policy == SyncAlways {
		if l.opts.BugSkipSync {
			// The planted lost-commit bug: acknowledge without
			// durability. The frame still reaches the file so the loss
			// comes from Crash truncating to the stale fsync watermark,
			// exactly like a real skipped fsync.
			return l.flushBufLocked()
		}
		return l.syncLocked()
	}
	if len(l.buf) >= bufFlushBytes {
		return l.flushBufLocked()
	}
	return nil
}

// flushBufLocked writes the staged frames through to the active segment.
// The buffer is kept on error so the next flush retries the same bytes.
// Callers hold l.mu.
func (l *Log) flushBufLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	if _, err := l.f.Write(l.buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.written += int64(len(l.buf))
	l.buf = l.buf[:0]
	return nil
}

// syncLocked writes the staged frames and fsyncs the active segment,
// advancing the durable watermark. Callers hold l.mu.
func (l *Log) syncLocked() error {
	if err := l.flushBufLocked(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.fsyncs.Add(1)
	l.synced = l.written
	l.dirty = false
	return nil
}

// Sync forces the durable watermark up to everything appended so far.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// Checkpoint makes state durable as a snapshot covering every record
// appended so far, rotates the log to a fresh segment and purges the
// files the snapshot supersedes. The snapshot lands via tmp+rename with
// a directory fsync, so a crash mid-checkpoint leaves the previous
// snapshot+tail fully intact.
func (l *Log) Checkpoint(state []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	lsn := l.nextLSN
	path := filepath.Join(l.dir, fmt.Sprintf("snap-%016x.ckpt", lsn))
	tmp := path + ".tmp"
	buf := make([]byte, headerLen+frameHeader+len(state))
	copy(buf, snapMagic)
	binary.BigEndian.PutUint64(buf[8:16], lsn)
	binary.LittleEndian.PutUint32(buf[16:20], uint32(len(state)))
	binary.LittleEndian.PutUint32(buf[20:24], crc32.Checksum(state, castagnoli))
	copy(buf[headerLen+frameHeader:], state)
	if err := writeFileSync(tmp, buf); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	syncDir(l.dir)

	// Rotate: the old segment's records — including any still staged in
	// the append buffer — are all covered by the snapshot, so the staged
	// frames are dropped rather than written to a file about to be
	// purged.
	l.buf = l.buf[:0]
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: checkpoint: closing old segment: %w", err)
	}
	l.segBase = lsn
	if err := l.newSegmentLocked(); err != nil {
		return err
	}
	l.purgeLocked(lsn)
	l.checkpoints.Add(1)
	l.lastCkpt.Store(time.Now().UnixNano())
	return nil
}

// newSegmentLocked creates wal-<segBase>.log with its header and makes
// it the active segment. Callers hold l.mu with l.f closed or unset.
func (l *Log) newSegmentLocked() error {
	path := filepath.Join(l.dir, fmt.Sprintf("wal-%016x.log", l.segBase))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: new segment: %w", err)
	}
	hdr := make([]byte, headerLen)
	copy(hdr, segMagic)
	binary.BigEndian.PutUint64(hdr[8:16], l.segBase)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("wal: new segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: new segment: %w", err)
	}
	syncDir(l.dir)
	l.f = f
	l.seg++
	l.written = headerLen
	l.synced = headerLen
	l.dirty = false
	return nil
}

// purgeLocked removes segments and snapshots superseded by the durable
// checkpoint at lsn. Best-effort: a leftover file only wastes space and
// is skipped (not replayed) by the next recovery.
func (l *Log) purgeLocked(lsn uint64) {
	segs, _ := scanFiles(l.dir, "wal-", ".log")
	for _, s := range segs {
		if s.base < lsn {
			os.Remove(s.path)
		}
	}
	snaps, _ := scanFiles(l.dir, "snap-", ".ckpt")
	for _, s := range snaps {
		if s.base < lsn {
			os.Remove(s.path)
		}
	}
}

// Close flushes outstanding appends and closes the segment — the
// graceful path.
func (l *Log) Close() error {
	l.stopFlusher()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Crash abandons the log the way a power loss would: the active segment
// is cut back to the last fsynced byte and nothing else is flushed.
// Records acknowledged under SyncGrouped/SyncOff (or under a planted
// BugSkipSync) since the last sync are gone, exactly as on real
// hardware.
func (l *Log) Crash() error {
	l.stopFlusher()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.buf = nil // staged frames die with the process
	err := l.f.Truncate(l.synced)
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

func (l *Log) stopFlusher() {
	l.mu.Lock()
	if l.stopFlush == nil || l.flushStopped {
		l.mu.Unlock()
		return
	}
	l.flushStopped = true
	l.mu.Unlock()
	close(l.stopFlush)
	<-l.flushDone
}

// Stats returns the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Policy:                 l.opts.Policy.String(),
		NextLSN:                l.nextLSN,
		SegmentBase:            l.segBase,
		SinceCheckpoint:        l.nextLSN - l.segBase,
		Appended:               l.appended.Load(),
		Fsyncs:                 l.fsyncs.Load(),
		Checkpoints:            l.checkpoints.Load(),
		LastCheckpointUnixNano: l.lastCkpt.Load(),
	}
}

// ---- recovery scan (shared by Open, ReadAll and Inspect) ----

type dirFile struct {
	path string
	base uint64
}

// scanFiles lists dir entries named <prefix><16 hex digits><suffix>,
// sorted by the embedded LSN.
func scanFiles(dir, prefix, suffix string) ([]dirFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []dirFile
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
		base, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue // tmp files and strangers are not ours to judge
		}
		out = append(out, dirFile{path: filepath.Join(dir, name), base: base})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].base < out[j].base })
	return out, nil
}

func segmentBase(path string) (uint64, error) {
	name := filepath.Base(path)
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	base, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("wal: bad segment name %q", name)
	}
	return base, nil
}

// readSnapshot decodes one snapshot file.
func readSnapshot(path string) (lsn uint64, payload []byte, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, fmt.Errorf("wal: %w", err)
	}
	if len(data) < headerLen+frameHeader || string(data[:8]) != snapMagic {
		return 0, nil, fmt.Errorf("%w: snapshot %s has a bad header", ErrCorrupt, filepath.Base(path))
	}
	lsn = binary.BigEndian.Uint64(data[8:16])
	n := binary.LittleEndian.Uint32(data[16:20])
	crc := binary.LittleEndian.Uint32(data[20:24])
	body := data[headerLen+frameHeader:]
	if uint64(len(body)) != uint64(n) {
		return 0, nil, fmt.Errorf("%w: snapshot %s holds %d payload bytes, header says %d",
			ErrCorrupt, filepath.Base(path), len(body), n)
	}
	if crc32.Checksum(body, castagnoli) != crc {
		return 0, nil, fmt.Errorf("%w: snapshot %s fails its checksum", ErrCorrupt, filepath.Base(path))
	}
	return lsn, body, nil
}

// replaySegment parses one segment file. For the last segment a short
// final frame is a torn tail: replay stops there and tornAt carries the
// truncation offset. Anywhere else, short frames and CRC mismatches are
// ErrCorrupt with the segment and offset named.
func replaySegment(path string, isLast bool) (base uint64, records [][]byte, tornAt int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, -1, fmt.Errorf("wal: %w", err)
	}
	name := filepath.Base(path)
	if len(data) < headerLen || string(data[:8]) != segMagic {
		return 0, nil, -1, fmt.Errorf("%w: segment %s has a bad header", ErrCorrupt, name)
	}
	base = binary.BigEndian.Uint64(data[8:16])
	off := int64(headerLen)
	tornAt = -1
	for off < int64(len(data)) {
		rest := int64(len(data)) - off
		if rest < frameHeader {
			if isLast {
				return base, records, off, nil
			}
			return 0, nil, -1, fmt.Errorf("%w: segment %s: %d trailing bytes at offset %d before the tail",
				ErrCorrupt, name, rest, off)
		}
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if rest-frameHeader < n {
			if isLast {
				return base, records, off, nil
			}
			return 0, nil, -1, fmt.Errorf("%w: segment %s: record at offset %d claims %d bytes, %d remain before the tail",
				ErrCorrupt, name, off, n, rest-frameHeader)
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.Checksum(payload, castagnoli) != crc {
			return 0, nil, -1, fmt.Errorf("%w: segment %s: record lsn=%d at offset %d fails its CRC",
				ErrCorrupt, name, base+uint64(len(records)), off)
		}
		records = append(records, payload)
		off += frameHeader + n
	}
	return base, records, -1, nil
}

// recoverDir scans dir and reconstructs the recovered state, the path of
// the last segment ("" when none) and the torn-tail truncation offset
// (-1 when the tail is clean).
func recoverDir(dir string) (Recovered, string, int64, error) {
	var rec Recovered
	snaps, err := scanFiles(dir, "snap-", ".ckpt")
	if err != nil {
		return rec, "", -1, err
	}
	if len(snaps) > 0 {
		newest := snaps[len(snaps)-1]
		lsn, payload, err := readSnapshot(newest.path)
		if err != nil {
			return rec, "", -1, err
		}
		rec.Snapshot = payload
		rec.SnapshotLSN = lsn
	}
	segs, err := scanFiles(dir, "wal-", ".log")
	if err != nil {
		return rec, "", -1, err
	}
	// Segments fully covered by the snapshot are purge leftovers; skip
	// them without reading.
	live := segs[:0]
	for _, s := range segs {
		if s.base >= rec.SnapshotLSN {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return rec, "", -1, nil
	}
	if live[0].base != rec.SnapshotLSN {
		return rec, "", -1, fmt.Errorf("%w: snapshot covers lsn %d but the oldest live segment starts at %d — records are missing",
			ErrCorrupt, rec.SnapshotLSN, live[0].base)
	}
	expect := rec.SnapshotLSN
	tornAt := int64(-1)
	for i, s := range live {
		isLast := i == len(live)-1
		base, records, torn, err := replaySegment(s.path, isLast)
		if err != nil {
			return rec, "", -1, err
		}
		if base != expect {
			return rec, "", -1, fmt.Errorf("%w: segment %s starts at lsn %d, expected %d — the chain is broken",
				ErrCorrupt, filepath.Base(s.path), base, expect)
		}
		rec.Records = append(rec.Records, records...)
		expect = base + uint64(len(records))
		if isLast && torn >= 0 {
			rec.TailTruncated = true
			tornAt = torn
		}
	}
	return rec, live[len(live)-1].path, tornAt, nil
}

// ReadAll performs the recovery scan read-only: nothing is truncated or
// created, so it is safe against a directory another process owns. A
// torn tail is reported, not repaired.
func ReadAll(dir string) (Recovered, error) {
	if _, err := os.Stat(dir); err != nil {
		return Recovered{}, fmt.Errorf("wal: %w", err)
	}
	rec, _, _, err := recoverDir(dir)
	return rec, err
}

// writeFileSync writes data and fsyncs before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a rename survives power loss.
// Best-effort: some filesystems refuse directory fsyncs.
func syncDir(dir string) {
	if df, err := os.Open(dir); err == nil {
		_ = df.Sync()
		df.Close()
	}
}
