package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opts Options) (*Log, Recovered) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, rec
}

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("record-%04d-%s", i, string(bytes.Repeat([]byte{byte(i)}, i%97))))
	}
	return out
}

func TestRoundtripPerPolicy(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncGrouped, SyncOff} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, rec := mustOpen(t, dir, Options{Policy: pol})
			if rec.Snapshot != nil || len(rec.Records) != 0 {
				t.Fatalf("fresh dir recovered state: %+v", rec)
			}
			want := payloads(40)
			for _, p := range want {
				if err := l.Append(p); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			// A graceful close flushes under every policy.
			l2, rec2 := mustOpen(t, dir, Options{Policy: pol})
			defer l2.Close()
			if len(rec2.Records) != len(want) {
				t.Fatalf("recovered %d records, want %d", len(rec2.Records), len(want))
			}
			for i, p := range want {
				if !bytes.Equal(rec2.Records[i], p) {
					t.Fatalf("record %d mismatch", i)
				}
			}
			if rec2.TailTruncated {
				t.Fatal("clean log reported a torn tail")
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"always": SyncAlways, "Grouped": SyncGrouped, " off ": SyncOff,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted garbage")
	}
}

func TestCheckpointRotatesAndPurges(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncAlways})
	for _, p := range payloads(10) {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint([]byte("state-at-10")); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for _, p := range payloads(3) {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.NextLSN != 13 || st.SegmentBase != 10 || st.SinceCheckpoint != 3 {
		t.Fatalf("stats after rotate: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	info, err := Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if len(info.Segments) != 1 || info.Segments[0].Base != 10 || info.Segments[0].Records != 3 {
		t.Fatalf("segments after purge: %+v", info.Segments)
	}
	if len(info.Snapshots) != 1 || info.Snapshots[0].LSN != 10 {
		t.Fatalf("snapshots after purge: %+v", info.Snapshots)
	}

	_, rec := mustOpen(t, dir, Options{Policy: SyncAlways})
	if string(rec.Snapshot) != "state-at-10" || rec.SnapshotLSN != 10 || len(rec.Records) != 3 {
		t.Fatalf("recovered: snap=%q lsn=%d records=%d", rec.Snapshot, rec.SnapshotLSN, len(rec.Records))
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncAlways})
	want := payloads(5)
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "wal-0000000000000000.log")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: a frame header claiming more bytes than follow.
	torn := append(append([]byte{}, data...), 0xff, 0x00, 0x00, 0x00, 1, 2, 3)
	if err := os.WriteFile(seg, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	// ReadAll reports without repairing.
	ra, err := ReadAll(dir)
	if err != nil {
		t.Fatalf("ReadAll on torn tail: %v", err)
	}
	if !ra.TailTruncated || len(ra.Records) != 5 {
		t.Fatalf("ReadAll: torn=%v records=%d", ra.TailTruncated, len(ra.Records))
	}
	if fi, _ := os.Stat(seg); fi.Size() != int64(len(torn)) {
		t.Fatal("ReadAll mutated the segment")
	}

	// Open truncates and the log is appendable again.
	l2, rec := mustOpen(t, dir, Options{Policy: SyncAlways})
	if !rec.TailTruncated || len(rec.Records) != 5 {
		t.Fatalf("Open: torn=%v records=%d", rec.TailTruncated, len(rec.Records))
	}
	if fi, _ := os.Stat(seg); fi.Size() != int64(len(data)) {
		t.Fatalf("torn bytes not truncated: %d != %d", fi.Size(), len(data))
	}
	if err := l2.Append([]byte("after-repair")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec3 := mustOpen(t, dir, Options{Policy: SyncAlways})
	if len(rec3.Records) != 6 || string(rec3.Records[5]) != "after-repair" {
		t.Fatalf("post-repair replay: %d records", len(rec3.Records))
	}
}

func TestMidLogCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncAlways})
	for _, p := range payloads(8) {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "wal-0000000000000000.log")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the middle of the file: the frame is
	// complete, so this is corruption, not a torn tail.
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, Options{Policy: SyncAlways})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on corrupt mid-log record: %v", err)
	}
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("CRC")) {
		t.Fatalf("error does not name the CRC failure: %v", err)
	}
	if _, err := ReadAll(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadAll on corrupt record: %v", err)
	}
}

func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncAlways})
	if err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint([]byte("good-state")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, "snap-0000000000000001.ckpt")
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{Policy: SyncAlways}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on corrupt snapshot: %v", err)
	}
}

func TestBrokenChainRejected(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteRawSegment(dir, 0, [][]byte{[]byte("a"), []byte("b")}); err != nil {
		t.Fatal(err)
	}
	// Next segment claims base 5 but only 2 records precede it.
	if _, err := WriteRawSegment(dir, 5, [][]byte{[]byte("c")}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{Policy: SyncAlways}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on broken chain: %v", err)
	}
}

func TestCrashDropsUnsyncedRecords(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncOff})
	if err := l.Append([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("volatile-1")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("volatile-2")); err != nil {
		t.Fatal(err)
	}
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpen(t, dir, Options{Policy: SyncOff})
	if len(rec.Records) != 1 || string(rec.Records[0]) != "durable" {
		t.Fatalf("crash kept unsynced records: %d recovered", len(rec.Records))
	}
}

func TestSyncAlwaysSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncAlways})
	want := payloads(7)
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpen(t, dir, Options{Policy: SyncAlways})
	if len(rec.Records) != len(want) {
		t.Fatalf("SyncAlways lost records across a crash: %d of %d", len(rec.Records), len(want))
	}
}

func TestBugSkipSyncLosesAcknowledgedRecords(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncAlways, BugSkipSync: true})
	for _, p := range payloads(7) {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpen(t, dir, Options{Policy: SyncAlways})
	if len(rec.Records) != 0 {
		t.Fatalf("planted BugSkipSync still recovered %d records", len(rec.Records))
	}
}

func TestGroupedFlusherMakesRecordsDurable(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncGrouped, GroupInterval: time.Millisecond})
	if err := l.Append([]byte("grouped-record")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("grouped flusher never synced")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpen(t, dir, Options{Policy: SyncGrouped})
	if len(rec.Records) != 1 {
		t.Fatalf("flushed record lost across crash: %d recovered", len(rec.Records))
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncOff})
	defer l.Close()
	if err := l.Append(make([]byte, maxRecord+1)); err == nil {
		t.Fatal("oversize record accepted")
	}
}

func TestClosedLogRejectsOps(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncOff})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: %v", err)
	}
	if err := l.Checkpoint([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint after Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestInspectTornTailReadOnly(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteRawSegment(dir, 0, [][]byte{[]byte("ok")}); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "wal-0000000000000000.log")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0}); err != nil { // short frame header
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(seg)
	info, err := Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if len(info.Segments) != 1 || !info.Segments[0].TornTail || info.Segments[0].Records != 1 {
		t.Fatalf("Inspect torn tail: %+v", info.Segments)
	}
	after, _ := os.Stat(seg)
	if before.Size() != after.Size() {
		t.Fatal("Inspect mutated the segment")
	}
}
