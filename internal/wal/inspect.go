package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"
)

// SegmentInfo describes one log segment on disk.
type SegmentInfo struct {
	Path    string
	Base    uint64 // LSN of the segment's first record
	Records int
	Bytes   int64
	// TornTail reports an incomplete final frame (only legal, and only
	// reported, on the last segment; earlier segments fail the scan).
	TornTail bool
}

// SnapshotInfo describes one checkpoint snapshot on disk.
type SnapshotInfo struct {
	Path    string
	LSN     uint64
	Bytes   int64
	ModTime time.Time
}

// Info is a read-only inventory of a WAL directory.
type Info struct {
	Dir       string
	Segments  []SegmentInfo
	Snapshots []SnapshotInfo
}

// Inspect inventories dir without opening, truncating or creating
// anything, decoding just enough of each file to count records. Unlike
// ReadAll it keeps going on a broken chain so an operator can see every
// file; per-file corruption (bad header, short mid-segment frame, CRC
// mismatch) still returns the error alongside what was gathered so far.
func Inspect(dir string) (Info, error) {
	info := Info{Dir: dir}
	if _, err := os.Stat(dir); err != nil {
		return info, fmt.Errorf("wal: %w", err)
	}
	snaps, err := scanFiles(dir, "snap-", ".ckpt")
	if err != nil {
		return info, err
	}
	for _, s := range snaps {
		fi, err := os.Stat(s.path)
		if err != nil {
			return info, fmt.Errorf("wal: %w", err)
		}
		if _, _, err := readSnapshot(s.path); err != nil {
			return info, err
		}
		info.Snapshots = append(info.Snapshots, SnapshotInfo{
			Path: s.path, LSN: s.base, Bytes: fi.Size(), ModTime: fi.ModTime(),
		})
	}
	segs, err := scanFiles(dir, "wal-", ".log")
	if err != nil {
		return info, err
	}
	for i, s := range segs {
		fi, err := os.Stat(s.path)
		if err != nil {
			return info, fmt.Errorf("wal: %w", err)
		}
		isLast := i == len(segs)-1
		base, records, tornAt, err := countSegment(s.path, isLast)
		if err != nil {
			return info, err
		}
		info.Segments = append(info.Segments, SegmentInfo{
			Path: s.path, Base: base, Records: records,
			Bytes: fi.Size(), TornTail: tornAt >= 0,
		})
	}
	return info, nil
}

// countSegment walks a segment's frames without retaining payloads.
func countSegment(path string, isLast bool) (base uint64, records int, tornAt int64, err error) {
	b, recs, torn, err := replaySegment(path, isLast)
	if err != nil {
		return 0, 0, -1, err
	}
	return b, len(recs), torn, nil
}

// LastSnapshotTime returns the newest snapshot's mtime, the zero time
// when the directory holds none.
func LastSnapshotTime(dir string) (time.Time, error) {
	snaps, err := scanFiles(dir, "snap-", ".ckpt")
	if err != nil || len(snaps) == 0 {
		return time.Time{}, err
	}
	fi, err := os.Stat(snaps[len(snaps)-1].path)
	if err != nil {
		return time.Time{}, fmt.Errorf("wal: %w", err)
	}
	return fi.ModTime(), nil
}

// WriteRawSegment writes payloads as a well-formed segment file based at
// base — a test and fuzz-corpus helper, exported so harnesses outside
// the package can fabricate directories.
func WriteRawSegment(dir string, base uint64, payloads [][]byte) (string, error) {
	buf := make([]byte, headerLen)
	copy(buf, segMagic)
	binary.BigEndian.PutUint64(buf[8:16], base)
	for _, p := range payloads {
		frame := make([]byte, frameHeader)
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(p, castagnoli))
		buf = append(buf, frame...)
		buf = append(buf, p...)
	}
	path := filepath.Join(dir, fmt.Sprintf("wal-%016x.log", base))
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
