package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// rawSegment assembles segment bytes in memory for the fuzz corpus.
func rawSegment(base uint64, payloads ...[]byte) []byte {
	buf := make([]byte, headerLen)
	copy(buf, segMagic)
	binary.BigEndian.PutUint64(buf[8:16], base)
	for _, p := range payloads {
		frame := make([]byte, frameHeader)
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(p, castagnoli))
		buf = append(buf, frame...)
		buf = append(buf, p...)
	}
	return buf
}

// FuzzWALReplay throws arbitrary bytes at the segment decoder as the
// sole wal-0 segment of a directory. The decoder must never panic or
// over-allocate; when the read-only scan accepts the bytes, Open must
// accept them too and agree on the record count, and the records must
// survive an append+reopen cycle (truncating any torn tail is the only
// mutation Open may make).
func FuzzWALReplay(f *testing.F) {
	f.Add(rawSegment(0))
	f.Add(rawSegment(0, []byte("hello")))
	f.Add(rawSegment(0, []byte(""), []byte("two"), bytes.Repeat([]byte{0xab}, 300)))
	f.Add(rawSegment(7, []byte("wrong-base")))
	f.Add(append(rawSegment(0, []byte("torn")), 0xff, 0xff, 0x00, 0x00, 1, 2))
	f.Add([]byte(segMagic))
	f.Add([]byte("garbage that is not a segment at all"))
	corrupt := rawSegment(0, []byte("flip-me"))
	corrupt[len(corrupt)-3] ^= 0x01
	f.Add(corrupt)
	// A length field far larger than the file: must not allocate 4 GiB.
	huge := rawSegment(0)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		seg := filepath.Join(dir, "wal-0000000000000000.log")
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := ReadAll(dir)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("ReadAll failed with a non-corruption error: %v", err)
			}
			return
		}
		l, orec, err := Open(dir, Options{Policy: SyncOff})
		if err != nil {
			t.Fatalf("ReadAll accepted the bytes but Open rejected them: %v", err)
		}
		if len(orec.Records) != len(rec.Records) {
			t.Fatalf("ReadAll saw %d records, Open saw %d", len(rec.Records), len(orec.Records))
		}
		if err := l.Append([]byte("appended-after-recovery")); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		rec2, err := ReadAll(dir)
		if err != nil {
			t.Fatalf("ReadAll after append: %v", err)
		}
		if len(rec2.Records) != len(rec.Records)+1 {
			t.Fatalf("append+reopen: %d records, want %d", len(rec2.Records), len(rec.Records)+1)
		}
		for i := range rec.Records {
			if !bytes.Equal(rec2.Records[i], rec.Records[i]) {
				t.Fatalf("record %d changed across reopen", i)
			}
		}
	})
}
