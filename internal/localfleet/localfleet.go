// Package localfleet stands up the real networked system on loopback:
// provider HTTP servers, distributor HTTP servers over RemoteProvider
// clients, real sockets, the same wire path as a multi-host deployment.
// It is the shared fixture behind cmd/cloudbench's load harness and
// internal/minecheck's adversary-in-the-loop campaigns — anything that
// wants to measure or attack the system as deployed rather than an
// in-process shortcut.
package localfleet

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/transport"
)

// Config describes the loopback deployment to stand up.
type Config struct {
	// Shards is the number of independent distributors (>= 1). Each
	// shard owns its provider fleet outright — shared-nothing, so
	// throughput scales with shard count exactly as across machines.
	Shards int
	// Providers is the fleet size per shard.
	Providers int
	// ProvLatency, when > 0, gives every provider a real (sleeping)
	// per-op service time; zero keeps providers instant for
	// deterministic harnesses.
	ProvLatency time.Duration
	// Wrap, when non-nil, interposes on each in-memory provider before
	// it is served over HTTP — the hook minecheck uses to install
	// provider-side spies (the malicious-insider vantage point).
	Wrap func(shard, idx int, p provider.Provider) provider.Provider
	// Distributor tunes each shard's core.Config after the fleet is
	// attached (cache, hedging, stream window, parallelism, …). The
	// passed config already carries the fleet; mutate knobs in place.
	Distributor func(shard int, cfg *core.Config)
}

// Cluster is a running loopback deployment.
type Cluster struct {
	// DistURLs are the distributor base URLs in shard order.
	DistURLs []string
	// ProviderURLs[s] are shard s's provider base URLs in fleet order.
	ProviderURLs [][]string
	servers      []*http.Server
}

// Close shuts every HTTP server down.
func (c *Cluster) Close() {
	for _, s := range c.servers {
		_ = s.Close()
	}
}

// Start builds and serves the deployment described by cfg.
func Start(cfg Config) (*Cluster, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("localfleet: shards %d < 1", cfg.Shards)
	}
	if cfg.Providers < 1 {
		return nil, fmt.Errorf("localfleet: providers %d < 1", cfg.Providers)
	}
	c := &Cluster{
		DistURLs:     make([]string, cfg.Shards),
		ProviderURLs: make([][]string, cfg.Shards),
	}
	// One pooled transport for all distributor→provider connections; the
	// default transport's 2 idle conns per host would throttle fan-out.
	providerHTTP := &http.Client{
		Timeout:   30 * time.Second,
		Transport: transport.NewPooledTransport(),
	}
	for s := 0; s < cfg.Shards; s++ {
		fleet, err := provider.NewFleet()
		if err != nil {
			c.Close()
			return nil, err
		}
		for i := 0; i < cfg.Providers; i++ {
			opts := provider.Options{}
			if cfg.ProvLatency > 0 {
				opts.Latency = provider.LatencyModel{PerOp: cfg.ProvLatency}
				opts.Sleep = time.Sleep
			}
			// Uniform cost level: placement prefers strictly cheaper
			// providers and only load-balances within a cost tier, so a
			// mixed-cost fleet would concentrate all load on its
			// cheapest member and idle the rest. Equal CL turns the
			// tie-break into least-load placement across the whole
			// fleet — the symmetric queueing bank load measurements
			// assume.
			mem, err := provider.New(provider.Info{
				Name: fmt.Sprintf("s%02dp%02d", s, i),
				PL:   privacy.High,
				CL:   1,
			}, opts)
			if err != nil {
				c.Close()
				return nil, err
			}
			var p provider.Provider = mem
			if cfg.Wrap != nil {
				p = cfg.Wrap(s, i, p)
			}
			url, srv, err := serveLoopback(transport.NewProviderServer(p))
			if err != nil {
				c.Close()
				return nil, err
			}
			c.servers = append(c.servers, srv)
			c.ProviderURLs[s] = append(c.ProviderURLs[s], url)
			remote, err := transport.DialProvider(url, providerHTTP)
			if err != nil {
				c.Close()
				return nil, err
			}
			if err := fleet.Add(remote); err != nil {
				c.Close()
				return nil, err
			}
		}

		dcfg := core.Config{Fleet: fleet}
		if cfg.Distributor != nil {
			cfg.Distributor(s, &dcfg)
		}
		dist, err := core.New(dcfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		url, srv, err := serveLoopback(transport.NewDistributorServer(dist))
		if err != nil {
			c.Close()
			return nil, err
		}
		c.servers = append(c.servers, srv)
		c.DistURLs[s] = url
	}
	return c, nil
}

// serveLoopback binds a handler to an ephemeral loopback port.
func serveLoopback(h http.Handler) (string, *http.Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), srv, nil
}
