// Package sim quantifies the availability half of the paper's pitch: "the
// proposed system ensures greater availability of data". It models
// provider outages (the EC2 April-2011 incident the paper opens with) as
// independent failures and measures, analytically and by Monte Carlo,
// whether striped data survives — per RAID level, stripe width and
// failure probability — plus end-to-end outage drills against a live
// distributor.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/provider"
	"repro/internal/raid"
)

// StripeSurvival returns the analytic probability that a stripe of
// dataShards+parity shards on distinct providers, each independently down
// with probability p, remains fully readable (lost shards ≤ parity).
func StripeSurvival(dataShards int, level raid.Level, p float64) (float64, error) {
	if dataShards < 1 {
		return 0, fmt.Errorf("sim: dataShards %d", dataShards)
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("sim: failure probability %v outside [0,1]", p)
	}
	if !level.Valid() {
		return 0, fmt.Errorf("sim: invalid raid level %v", level)
	}
	n := dataShards + level.ParityShards()
	tolerate := level.ParityShards()
	prob := 0.0
	for k := 0; k <= tolerate; k++ {
		prob += binom(n, k) * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
	}
	return prob, nil
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r *= float64(n-i) / float64(i+1)
	}
	return r
}

// MonteCarloSurvival estimates the same probability by simulation; it
// exists to validate the analytic formula and to extend to correlated
// failures later.
func MonteCarloSurvival(dataShards int, level raid.Level, p float64, trials int, rng *rand.Rand) (float64, error) {
	if trials < 1 {
		return 0, fmt.Errorf("sim: trials %d", trials)
	}
	if _, err := StripeSurvival(dataShards, level, p); err != nil {
		return 0, err
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	n := dataShards + level.ParityShards()
	tolerate := level.ParityShards()
	ok := 0
	for t := 0; t < trials; t++ {
		down := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				down++
			}
		}
		if down <= tolerate {
			ok++
		}
	}
	return float64(ok) / float64(trials), nil
}

// OutageDrillResult reports an end-to-end outage drill.
type OutageDrillResult struct {
	ProvidersDown int
	FilesTotal    int
	FilesReadable int
}

// OutageDrill takes down `down` randomly chosen providers of the
// distributor's fleet and counts how many of the named files remain fully
// retrievable, then restores the fleet. It exercises the real recovery
// path rather than the analytic model.
func OutageDrill(d *core.Distributor, fleet *provider.Fleet, client, password string, files []string, down int, rng *rand.Rand) (OutageDrillResult, error) {
	if down < 0 || down > fleet.Len() {
		return OutageDrillResult{}, fmt.Errorf("sim: down=%d of %d providers", down, fleet.Len())
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(2))
	}
	perm := rng.Perm(fleet.Len())[:down]
	for _, i := range perm {
		p, err := fleet.At(i)
		if err != nil {
			return OutageDrillResult{}, err
		}
		p.SetOutage(true)
	}
	defer func() {
		for _, i := range perm {
			if p, err := fleet.At(i); err == nil {
				p.SetOutage(false)
			}
		}
	}()
	res := OutageDrillResult{ProvidersDown: down, FilesTotal: len(files)}
	for _, f := range files {
		if _, err := d.GetFile(client, password, f); err == nil {
			res.FilesReadable++
		}
	}
	return res, nil
}

// AvailabilityCurve sweeps the per-provider failure probability and
// returns (p, survival) pairs for a stripe configuration — the series the
// RAID ablation bench prints.
func AvailabilityCurve(dataShards int, level raid.Level, ps []float64) ([][2]float64, error) {
	out := make([][2]float64, 0, len(ps))
	for _, p := range ps {
		s, err := StripeSurvival(dataShards, level, p)
		if err != nil {
			return nil, err
		}
		out = append(out, [2]float64{p, s})
	}
	return out, nil
}
