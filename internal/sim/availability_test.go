package sim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/raid"
)

func TestStripeSurvivalBasics(t *testing.T) {
	// p = 0 → always survives; p = 1 → never (with data shards ≥ 1 and
	// tolerance < n).
	for _, lvl := range []raid.Level{raid.None, raid.RAID5, raid.RAID6} {
		s, err := StripeSurvival(4, lvl, 0)
		if err != nil || s != 1 {
			t.Fatalf("%v p=0: %v, %v", lvl, s, err)
		}
		s, err = StripeSurvival(4, lvl, 1)
		if err != nil || s != 0 {
			t.Fatalf("%v p=1: %v, %v", lvl, s, err)
		}
	}
}

func TestStripeSurvivalOrdering(t *testing.T) {
	// At any p ∈ (0,1), RAID6 ≥ RAID5 ≥ None for equal data shards.
	for _, p := range []float64{0.01, 0.05, 0.2, 0.5} {
		s0, _ := StripeSurvival(4, raid.None, p)
		s5, _ := StripeSurvival(4, raid.RAID5, p)
		s6, _ := StripeSurvival(4, raid.RAID6, p)
		if !(s6 > s5 && s5 > s0) {
			t.Fatalf("p=%v: ordering violated: none=%v raid5=%v raid6=%v", p, s0, s5, s6)
		}
	}
}

func TestStripeSurvivalKnownValue(t *testing.T) {
	// 1 data shard + RAID5 parity = 2 shards, tolerate 1:
	// P = (1-p)^2 + 2p(1-p).
	p := 0.1
	want := math.Pow(0.9, 2) + 2*0.1*0.9
	got, err := StripeSurvival(1, raid.RAID5, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestStripeSurvivalValidation(t *testing.T) {
	if _, err := StripeSurvival(0, raid.RAID5, 0.1); err == nil {
		t.Fatal("0 data shards accepted")
	}
	if _, err := StripeSurvival(2, raid.RAID5, -0.1); err == nil {
		t.Fatal("negative p accepted")
	}
	if _, err := StripeSurvival(2, raid.Level(7), 0.1); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestMonteCarloMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, tc := range []struct {
		data int
		lvl  raid.Level
		p    float64
	}{
		{4, raid.RAID5, 0.1},
		{4, raid.RAID6, 0.2},
		{2, raid.None, 0.15},
	} {
		analytic, err := StripeSurvival(tc.data, tc.lvl, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := MonteCarloSurvival(tc.data, tc.lvl, tc.p, 20_000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(analytic-mc) > 0.02 {
			t.Fatalf("%+v: analytic %v vs MC %v", tc, analytic, mc)
		}
	}
	if _, err := MonteCarloSurvival(2, raid.RAID5, 0.1, 0, nil); err == nil {
		t.Fatal("0 trials accepted")
	}
}

func TestAvailabilityCurveMonotone(t *testing.T) {
	ps := []float64{0, 0.1, 0.2, 0.3, 0.5, 0.9}
	curve, err := AvailabilityCurve(4, raid.RAID6, ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != len(ps) {
		t.Fatalf("curve points = %d", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i][1] > curve[i-1][1]+1e-12 {
			t.Fatalf("survival not monotone decreasing: %v", curve)
		}
	}
	if _, err := AvailabilityCurve(4, raid.RAID6, []float64{2}); err == nil {
		t.Fatal("bad p accepted")
	}
}

func drillFixture(t *testing.T) (*core.Distributor, *provider.Fleet, []string) {
	t.Helper()
	fleet, err := provider.NewFleet()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		p := provider.MustNew(provider.Info{
			Name: fmt.Sprintf("dp%d", i), PL: privacy.High, CL: 0,
		}, provider.Options{})
		if err := fleet.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	d, err := core.New(core.Config{Fleet: fleet})
	if err != nil {
		t.Fatal(err)
	}
	_ = d.RegisterClient("c")
	_ = d.AddPassword("c", "p", privacy.High)
	rng := rand.New(rand.NewSource(7))
	var files []string
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("f%d", i)
		data := make([]byte, 40_000)
		rng.Read(data)
		if _, err := d.Upload("c", "p", name, data, privacy.Moderate, core.UploadOptions{}); err != nil {
			t.Fatal(err)
		}
		files = append(files, name)
	}
	return d, fleet, files
}

func TestOutageDrillRAID5(t *testing.T) {
	d, fleet, files := drillFixture(t)
	// Zero outages: everything readable.
	res, err := OutageDrill(d, fleet, "c", "p", files, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FilesReadable != len(files) {
		t.Fatalf("baseline drill: %d/%d readable", res.FilesReadable, res.FilesTotal)
	}
	// One outage: RAID-5 masks it.
	res, err = OutageDrill(d, fleet, "c", "p", files, 1, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if res.FilesReadable != len(files) {
		t.Fatalf("1-down drill: %d/%d readable", res.FilesReadable, res.FilesTotal)
	}
	// Providers restored afterwards.
	for _, p := range fleet.All() {
		if p.Down() {
			t.Fatal("drill left a provider down")
		}
	}
	if _, err := OutageDrill(d, fleet, "c", "p", files, 99, nil); err == nil {
		t.Fatal("down > fleet accepted")
	}
}

func TestOutageDrillTotalOutage(t *testing.T) {
	d, fleet, files := drillFixture(t)
	res, err := OutageDrill(d, fleet, "c", "p", files, fleet.Len(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FilesReadable != 0 {
		t.Fatalf("everything down, yet %d files readable", res.FilesReadable)
	}
}

func TestWorkloadSoak(t *testing.T) {
	cfg := DefaultWorkloadConfig()
	rep, err := RunWorkload(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Uploads == 0 || rep.Reads == 0 || rep.RangeReads == 0 || rep.Updates == 0 || rep.Removes == 0 {
		t.Fatalf("workload lacks variety: %+v", rep)
	}
	if rep.OutagesInjected == 0 {
		t.Fatalf("no outages injected: %+v", rep)
	}
	if rep.Verifications < 50 {
		t.Fatalf("too few verifications: %+v", rep)
	}
}

func TestWorkloadSeeds(t *testing.T) {
	// Several seeds, smaller runs: shake out order-dependent bugs.
	for seed := int64(2); seed <= 5; seed++ {
		cfg := WorkloadConfig{Clients: 2, Operations: 80, OutageEveryN: 7, MaxFileBytes: 20 << 10, Seed: seed}
		if _, err := RunWorkload(cfg, 7); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestWorkloadValidation(t *testing.T) {
	if _, err := RunWorkload(WorkloadConfig{}, 6); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := RunWorkload(DefaultWorkloadConfig(), 2); err == nil {
		t.Fatal("tiny fleet accepted")
	}
}
