package sim

import "testing"

// TestWorkloadManySeeds sweeps soak seeds; historic catches: seed 5
// exposed update-time parity corruption via stale-parity reconstruction,
// and longer bench sweeps exposed upload-rollback orphans on down
// providers.
func TestWorkloadManySeeds(t *testing.T) {
	seeds := int64(60)
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(1); seed <= seeds; seed++ {
		cfg := DefaultWorkloadConfig()
		cfg.Seed = seed
		if _, err := RunWorkload(cfg, 6); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
