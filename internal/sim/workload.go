package sim

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/raid"
)

// WorkloadConfig parameterizes a randomized soak run against a live
// distributor: many clients uploading, reading, range-reading, updating
// and removing files while providers flap — the day-in-the-life test a
// storage system has to survive.
type WorkloadConfig struct {
	Clients    int
	Operations int
	// OutageEveryN injects a one-operation provider outage every N ops
	// (0 disables).
	OutageEveryN int
	// MaxFileBytes bounds generated file sizes.
	MaxFileBytes int
	Seed         int64
}

// DefaultWorkloadConfig is a quick but varied soak.
func DefaultWorkloadConfig() WorkloadConfig {
	return WorkloadConfig{Clients: 3, Operations: 200, OutageEveryN: 11, MaxFileBytes: 40 << 10, Seed: 1}
}

// WorkloadReport summarizes the soak.
type WorkloadReport struct {
	Uploads, Reads, RangeReads, Updates, Removes int
	OutagesInjected                              int
	// Verifications is the number of content checks performed; every one
	// passed if Err is nil.
	Verifications int
	// OrphansGCed counts unreferenced blobs reclaimed by the final audit —
	// the residue of operations interrupted by injected outages (e.g. an
	// upload rollback that could not delete from a down provider).
	OrphansGCed int
}

// RunWorkload executes the soak against a fresh distributor over
// nProviders providers and verifies every read against a shadow copy.
// Any divergence is an error.
func RunWorkload(cfg WorkloadConfig, nProviders int) (WorkloadReport, error) {
	var rep WorkloadReport
	if cfg.Clients < 1 || cfg.Operations < 1 || nProviders < 4 {
		return rep, fmt.Errorf("sim: workload needs >=1 client, >=1 op, >=4 providers")
	}
	if cfg.MaxFileBytes < 1 {
		cfg.MaxFileBytes = 40 << 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	fleet, err := provider.NewFleet()
	if err != nil {
		return rep, err
	}
	for i := 0; i < nProviders; i++ {
		p, err := provider.New(provider.Info{
			Name: fmt.Sprintf("wp%02d", i), PL: privacy.High, CL: privacy.CostLevel(i % 4),
		}, provider.Options{})
		if err != nil {
			return rep, err
		}
		if err := fleet.Add(p); err != nil {
			return rep, err
		}
	}
	d, err := core.New(core.Config{Fleet: fleet})
	if err != nil {
		return rep, err
	}

	// Shadow state: what each client's files must contain.
	shadow := make([]map[string]*fileState, cfg.Clients)
	for ci := 0; ci < cfg.Clients; ci++ {
		name := fmt.Sprintf("client%02d", ci)
		if err := d.RegisterClient(name); err != nil {
			return rep, err
		}
		if err := d.AddPassword(name, "pw", privacy.High); err != nil {
			return rep, err
		}
		shadow[ci] = map[string]*fileState{}
	}
	levels := []privacy.Level{privacy.Public, privacy.Low, privacy.Moderate, privacy.High}
	fileSeq := 0

	for op := 0; op < cfg.Operations; op++ {
		// Flap a provider periodically for one operation.
		var flapped provider.Provider
		if cfg.OutageEveryN > 0 && op%cfg.OutageEveryN == cfg.OutageEveryN-1 {
			p, _ := fleet.At(rng.Intn(fleet.Len()))
			p.SetOutage(true)
			flapped = p
			rep.OutagesInjected++
		}

		ci := rng.Intn(cfg.Clients)
		client := fmt.Sprintf("client%02d", ci)
		files := shadow[ci]

		// A client facing a provider outage retries once after the outage
		// clears (real clients back off and retry; modelling the wait is
		// unnecessary).
		do := func(fn func() error) error {
			err := fn()
			if err != nil && flapped != nil {
				flapped.SetOutage(false)
				flapped = nil
				err = fn()
			}
			return err
		}

		switch action := rng.Intn(10); {
		case action < 4 || len(files) == 0: // upload
			fileSeq++
			name := fmt.Sprintf("f%04d", fileSeq)
			pl := levels[rng.Intn(len(levels))]
			data := dataset.RandomBytes(1+rng.Intn(cfg.MaxFileBytes), rng)
			opts := core.UploadOptions{}
			if rng.Intn(3) == 0 {
				opts.Assurance = raid.RAID6
			}
			if rng.Intn(4) == 0 {
				opts.MisleadFraction = 0.2
			}
			var info core.FileInfo
			if err := do(func() error {
				var uerr error
				info, uerr = d.Upload(client, "pw", name, data, pl, opts)
				return uerr
			}); err != nil {
				return rep, fmt.Errorf("op %d upload: %w", op, err)
			}
			size, _ := privacy.DefaultChunkSizes().Size(pl)
			fs := &fileState{}
			for o := 0; o < len(data); o += size {
				hi := o + size
				if hi > len(data) {
					hi = len(data)
				}
				fs.chunksData = append(fs.chunksData, append([]byte(nil), data[o:hi]...))
			}
			if len(fs.chunksData) == 0 {
				fs.chunksData = [][]byte{{}}
			}
			if len(fs.chunksData) != info.Chunks {
				return rep, fmt.Errorf("op %d upload: shadow has %d chunks, distributor %d", op, len(fs.chunksData), info.Chunks)
			}
			files[name] = fs
			rep.Uploads++
		case action < 6: // full read
			name := anyFile(files, rng)
			got, err := d.GetFile(client, "pw", name)
			if err != nil {
				return rep, fmt.Errorf("op %d read %s: %w", op, name, err)
			}
			if !bytes.Equal(got, files[name].bytes()) {
				return rep, fmt.Errorf("op %d read %s: content mismatch", op, name)
			}
			rep.Reads++
			rep.Verifications++
		case action < 8: // range read
			name := anyFile(files, rng)
			data := files[name].bytes()
			if len(data) == 0 {
				continue
			}
			o := rng.Intn(len(data))
			l := rng.Intn(len(data) - o)
			got, err := d.GetRange(client, "pw", name, o, l)
			if err != nil {
				return rep, fmt.Errorf("op %d range %s: %w", op, name, err)
			}
			if !bytes.Equal(got, data[o:o+l]) {
				return rep, fmt.Errorf("op %d range %s: content mismatch", op, name)
			}
			rep.RangeReads++
			rep.Verifications++
		case action < 9: // update one chunk
			name := anyFile(files, rng)
			fs := files[name]
			serial := rng.Intn(len(fs.chunksData))
			newChunk := dataset.RandomBytes(1+rng.Intn(2<<10), rng)
			if err := do(func() error {
				return d.UpdateChunk(client, "pw", name, serial, newChunk, core.UploadOptions{})
			}); err != nil {
				return rep, fmt.Errorf("op %d update %s#%d: %w", op, name, serial, err)
			}
			fs.chunksData[serial] = append([]byte(nil), newChunk...)
			rep.Updates++
			// Verify immediately.
			got, err := d.GetFile(client, "pw", name)
			if err != nil {
				return rep, fmt.Errorf("op %d post-update read %s: %w", op, name, err)
			}
			if sha256.Sum256(got) != sha256.Sum256(fs.bytes()) {
				return rep, fmt.Errorf("op %d post-update %s: content mismatch", op, name)
			}
			rep.Verifications++
		default: // remove
			name := anyFile(files, rng)
			if err := do(func() error { return d.RemoveFile(client, "pw", name) }); err != nil {
				return rep, fmt.Errorf("op %d remove %s: %w", op, name, err)
			}
			delete(files, name)
			rep.Removes++
		}

		if flapped != nil {
			flapped.SetOutage(false)
		}
	}

	// Final sweep: every surviving file reads back exactly.
	for ci := 0; ci < cfg.Clients; ci++ {
		client := fmt.Sprintf("client%02d", ci)
		for name, fs := range shadow[ci] {
			got, err := d.GetFile(client, "pw", name)
			if err != nil {
				return rep, fmt.Errorf("final read %s/%s: %w", client, name, err)
			}
			if !bytes.Equal(got, fs.bytes()) {
				return rep, fmt.Errorf("final read %s/%s: content mismatch", client, name)
			}
			rep.Verifications++
		}
	}
	// Reconcile: operations interrupted mid-outage can leave orphan blobs
	// (an upload rollback cannot delete from a provider that is down), so
	// run the orphan audit the way an operator would...
	audit, err := d.AuditOrphans(true)
	if err != nil {
		return rep, err
	}
	rep.OrphansGCed = audit.Deleted
	// ...after which table counts must match real provider contents
	// exactly.
	for i, p := range fleet.All() {
		if p.Len() != d.Stats().PerProvider[i] {
			return rep, fmt.Errorf("provider %d holds %d keys, table says %d", i, p.Len(), d.Stats().PerProvider[i])
		}
	}
	return rep, nil
}

// fileState is the workload's shadow copy of one stored file, tracked
// per chunk so variable-length chunk updates keep boundaries exact.
type fileState struct {
	chunksData [][]byte
}

// bytes returns the file's reassembled contents.
func (fs *fileState) bytes() []byte {
	var out []byte
	for _, c := range fs.chunksData {
		out = append(out, c...)
	}
	return out
}

// anyFile picks a deterministic-but-random existing filename.
func anyFile(files map[string]*fileState, rng *rand.Rand) string {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names[rng.Intn(len(names))]
}
