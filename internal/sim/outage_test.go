package sim

import "testing"

func TestSustainedOutageScenario(t *testing.T) {
	rep, err := RunSustainedOutage(DefaultOutageConfig())
	if err != nil {
		t.Fatal(err)
	}
	phase1 := rep.UploadsAttempted - rep.RollbacksInduced
	if rate := float64(rep.UploadsSucceeded) / float64(phase1); rate < 0.99 {
		t.Fatalf("upload success rate %.3f with one dark provider, want >= 0.99 (%d/%d)",
			rate, rep.UploadsSucceeded, phase1)
	}
	if rep.ReadsVerified != rep.UploadsSucceeded {
		t.Fatalf("reads verified = %d, uploads succeeded = %d", rep.ReadsVerified, rep.UploadsSucceeded)
	}
	if rep.RollbacksInduced == 0 {
		t.Fatal("no rollbacks were induced; the scenario lost its teeth")
	}
	if rep.Orphans != 0 {
		t.Fatalf("%d orphaned blobs after failovers and rollbacks", rep.Orphans)
	}
	m := rep.Metrics
	if m.WriteFailovers == 0 {
		t.Fatal("WriteFailovers = 0; the dark provider was never failed over")
	}
	if m.CircuitOpens == 0 {
		t.Fatal("CircuitOpens = 0; sustained failures never tripped a breaker")
	}
	if m.RollbackDeletes == 0 {
		t.Fatal("RollbackDeletes = 0; blackout uploads left nothing to roll back?")
	}
	if rep.Health[0].State == "closed" {
		t.Fatalf("dark provider breaker state = closed at end of run (health: %+v)", rep.Health[0])
	}
	if rep.Health[0].Failures == 0 {
		t.Fatal("dark provider recorded no failures")
	}
}
