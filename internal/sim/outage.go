package sim

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/privacy"
	"repro/internal/provider"
)

// OutageConfig parameterizes a sustained silent-outage scenario: one
// provider accepts connections but fails every data-plane operation for
// the whole run (the April-2011-style failure the paper opens with),
// while clients keep writing and reading. A few full-fleet blackouts are
// staged mid-upload to force partial-upload rollbacks.
type OutageConfig struct {
	Providers int // fleet size, >= 6
	Uploads   int // phase-1 uploads against the dark fleet
	Blackouts int // phase-2 induced rollback events
	FileBytes int // size of each generated file
	// Seed drives the generated file contents. Together with the virtual
	// breaker clock (advanced per operation, never read from wall time)
	// it makes the whole run a pure function of this config: same seed,
	// same op sequence, same breaker states.
	Seed int64
}

// DefaultOutageConfig exercises failover, circuit breaking and rollback
// in well under a second.
func DefaultOutageConfig() OutageConfig {
	return OutageConfig{Providers: 8, Uploads: 40, Blackouts: 3, FileBytes: 24 << 10, Seed: 7}
}

// OutageReport is the scenario's outcome.
type OutageReport struct {
	UploadsAttempted int
	UploadsSucceeded int
	ReadsVerified    int
	RollbacksInduced int
	// Orphans counts provider-resident blobs unreachable from the tables
	// after the run — must be zero if rollback and failover are airtight.
	Orphans int
	Metrics core.OpMetrics
	Health  []core.ProviderHealth
}

// RunSustainedOutage runs the scenario and verifies every read against
// the written content. Upload success is expected to stay >= 99% despite
// the dark provider; the report carries the counters the caller asserts
// on (WriteFailovers, CircuitOpens, RollbackDeletes).
func RunSustainedOutage(cfg OutageConfig) (OutageReport, error) {
	var rep OutageReport
	if cfg.Providers < 6 || cfg.Uploads < 1 {
		return rep, fmt.Errorf("sim: sustained outage needs >=6 providers, >=1 upload")
	}
	if cfg.FileBytes < 1 {
		cfg.FileBytes = 24 << 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	fleet, err := provider.NewFleet()
	if err != nil {
		return rep, err
	}
	hooked := make([]*provider.Hooked, cfg.Providers)
	for i := 0; i < cfg.Providers; i++ {
		mem, err := provider.New(provider.Info{
			Name: fmt.Sprintf("op%02d", i), PL: privacy.High, CL: 1,
		}, provider.Options{})
		if err != nil {
			return rep, err
		}
		hooked[i] = provider.NewHooked(mem)
		if err := fleet.Add(hooked[i]); err != nil {
			return rep, err
		}
	}
	// Breaker time is virtual and advanced per operation, never read from
	// the wall clock, so the scenario's staging is purely op-count-driven:
	// the same seed always sees the same breaker states at the same ops.
	// A short cooldown (5 ticks of the per-upload 1ms advance) lets
	// circuits opened by the staged blackouts heal within the run; the
	// permanently dark provider keeps re-tripping its breaker on every
	// failed probe.
	var vnow atomic.Int64
	tick := func(delta time.Duration) { vnow.Add(int64(delta)) }
	d, err := core.New(core.Config{
		Fleet: fleet,
		Health: health.Config{
			Cooldown: 5 * time.Millisecond,
			Clock:    func() time.Time { return time.Unix(0, vnow.Load()) },
		},
	})
	if err != nil {
		return rep, err
	}
	if err := d.RegisterClient("acme"); err != nil {
		return rep, err
	}
	if err := d.AddPassword("acme", "pw", privacy.High); err != nil {
		return rep, err
	}

	// Provider 0 goes silently dark: still "up", every Put and Get fails.
	dark := func(h *provider.Hooked) {
		h.SetBeforePut(func(int, string) error { return provider.ErrOutage })
		h.SetBeforeGet(func(string) error { return provider.ErrOutage })
	}
	dark(hooked[0])

	upload := func(name string) error {
		tick(time.Millisecond)
		data := make([]byte, cfg.FileBytes)
		rng.Read(data)
		rep.UploadsAttempted++
		if _, err := d.Upload("acme", "pw", name, data, privacy.Moderate, core.UploadOptions{}); err != nil {
			return nil // counted as a failed upload, not a scenario error
		}
		rep.UploadsSucceeded++
		got, err := d.GetFile("acme", "pw", name)
		if err != nil {
			return fmt.Errorf("sim: readback %s: %w", name, err)
		}
		if !bytes.Equal(got, data) {
			return fmt.Errorf("sim: readback %s: content mismatch", name)
		}
		rep.ReadsVerified++
		return nil
	}

	// Phase 1: sustained writes and reads with the dark provider in the
	// fleet. Failover must keep the success rate up; the health tracker
	// must learn to stop placing on it.
	for i := 0; i < cfg.Uploads; i++ {
		if err := upload(fmt.Sprintf("file%03d", i)); err != nil {
			return rep, err
		}
	}

	// Phase 2: fleet-wide blackouts striking mid-upload. The first couple
	// of shard puts land, then every provider goes dark, failover
	// exhausts placement, and the upload must roll the landed shards
	// back cleanly; after the blackout lifts, normal traffic heals the
	// tripped breakers.
	for b := 0; b < cfg.Blackouts; b++ {
		var gateMu sync.Mutex
		landed := 0
		gate := func(int, string) error {
			gateMu.Lock()
			defer gateMu.Unlock()
			landed++
			if landed > 2 {
				return provider.ErrOutage
			}
			return nil
		}
		for _, h := range hooked[1:] {
			h.SetBeforePut(gate)
		}
		data := make([]byte, cfg.FileBytes)
		rng.Read(data)
		if _, err := d.Upload("acme", "pw", fmt.Sprintf("doomed%02d", b), data, privacy.Moderate, core.UploadOptions{}); err == nil {
			return rep, fmt.Errorf("sim: blackout upload %d unexpectedly succeeded", b)
		}
		rep.RollbacksInduced++
		for _, h := range hooked[1:] {
			h.SetBeforePut(nil)
			h.SetBeforeGet(nil)
		}
		tick(10 * time.Millisecond) // let breaker cooldowns elapse, virtually
		if err := upload(fmt.Sprintf("heal%02d", b)); err != nil {
			return rep, err
		}
	}

	// Reconcile: no blob anywhere that the tables don't account for, and
	// the tables' per-provider counts match what providers actually hold.
	audit, err := d.AuditOrphans(false)
	if err != nil {
		return rep, err
	}
	for _, keys := range audit.Orphans {
		rep.Orphans += len(keys)
	}
	st := d.Stats()
	for i, h := range hooked {
		if h.Len() != st.PerProvider[i] {
			return rep, fmt.Errorf("sim: provider %d holds %d blobs, tables say %d", i, h.Len(), st.PerProvider[i])
		}
	}
	rep.Metrics = d.Metrics()
	rep.Health = d.Health()
	return rep, nil
}
