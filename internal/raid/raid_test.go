package raid

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func randShards(k, n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, k)
	for i := range out {
		sh := make([]byte, n)
		rng.Read(sh)
		out[i] = sh
	}
	return out
}

func TestLevelProperties(t *testing.T) {
	if None.ParityShards() != 0 || RAID5.ParityShards() != 1 || RAID6.ParityShards() != 2 {
		t.Fatal("parity shard counts wrong")
	}
	if !None.Valid() || !RAID5.Valid() || !RAID6.Valid() || Level(3).Valid() {
		t.Fatal("validity wrong")
	}
	if RAID5.String() != "raid5" || RAID6.String() != "raid6" || None.String() != "none" {
		t.Fatal("strings wrong")
	}
	if Level(9).String() == "" {
		t.Fatal("unknown level string empty")
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := Encode(Level(2), randShards(2, 4, 1)); !errors.Is(err, ErrBadStripe) {
		t.Fatalf("bad level err = %v", err)
	}
	if _, err := Encode(RAID5, nil); !errors.Is(err, ErrBadStripe) {
		t.Fatalf("no shards err = %v", err)
	}
	ragged := [][]byte{{1, 2}, {3}}
	if _, err := Encode(RAID5, ragged); !errors.Is(err, ErrBadStripe) {
		t.Fatalf("ragged err = %v", err)
	}
}

func TestEncodeDoesNotAliasInput(t *testing.T) {
	data := randShards(2, 8, 3)
	s, err := Encode(RAID5, data)
	if err != nil {
		t.Fatal(err)
	}
	data[0][0] ^= 0xFF
	if s.Shards[0][0] == data[0][0] {
		t.Fatal("stripe aliases caller's shards")
	}
}

func TestRAID5SingleLossAllPositions(t *testing.T) {
	data := randShards(4, 64, 7)
	for lost := 0; lost < 5; lost++ {
		s, err := Encode(RAID5, data)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]byte(nil), s.Shards[lost]...)
		s.Shards[lost] = nil
		if err := s.Reconstruct(); err != nil {
			t.Fatalf("lost=%d: %v", lost, err)
		}
		if !bytes.Equal(s.Shards[lost], want) {
			t.Fatalf("lost=%d: reconstruction mismatch", lost)
		}
	}
}

func TestRAID5TwoLossesFail(t *testing.T) {
	s, _ := Encode(RAID5, randShards(4, 16, 9))
	s.Shards[0] = nil
	s.Shards[2] = nil
	if err := s.Reconstruct(); !errors.Is(err, ErrTooManyLost) {
		t.Fatalf("err = %v, want ErrTooManyLost", err)
	}
}

func TestRAID6AllDoubleLossCombinations(t *testing.T) {
	data := randShards(5, 48, 11)
	orig, err := Encode(RAID6, data)
	if err != nil {
		t.Fatal(err)
	}
	n := len(orig.Shards) // 7
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			s, _ := Encode(RAID6, data)
			wa := append([]byte(nil), s.Shards[a]...)
			wb := append([]byte(nil), s.Shards[b]...)
			s.Shards[a] = nil
			s.Shards[b] = nil
			if err := s.Reconstruct(); err != nil {
				t.Fatalf("lost (%d,%d): %v", a, b, err)
			}
			if !bytes.Equal(s.Shards[a], wa) || !bytes.Equal(s.Shards[b], wb) {
				t.Fatalf("lost (%d,%d): reconstruction mismatch", a, b)
			}
		}
	}
}

func TestRAID6SingleLossAllPositions(t *testing.T) {
	data := randShards(3, 32, 13)
	for lost := 0; lost < 5; lost++ {
		s, _ := Encode(RAID6, data)
		want := append([]byte(nil), s.Shards[lost]...)
		s.Shards[lost] = nil
		if err := s.Reconstruct(); err != nil {
			t.Fatalf("lost=%d: %v", lost, err)
		}
		if !bytes.Equal(s.Shards[lost], want) {
			t.Fatalf("lost=%d: mismatch", lost)
		}
	}
}

func TestRAID6TripleLossFails(t *testing.T) {
	s, _ := Encode(RAID6, randShards(4, 8, 15))
	s.Shards[0], s.Shards[1], s.Shards[2] = nil, nil, nil
	if err := s.Reconstruct(); !errors.Is(err, ErrTooManyLost) {
		t.Fatalf("err = %v, want ErrTooManyLost", err)
	}
}

func TestNoneLevelLossFails(t *testing.T) {
	s, err := Encode(None, randShards(3, 8, 17))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Shards) != 3 {
		t.Fatalf("none level added parity: %d shards", len(s.Shards))
	}
	s.Shards[1] = nil
	if err := s.Reconstruct(); !errors.Is(err, ErrTooManyLost) {
		t.Fatalf("err = %v, want ErrTooManyLost", err)
	}
}

func TestReconstructNoLossIsNoop(t *testing.T) {
	s, _ := Encode(RAID6, randShards(3, 8, 19))
	before := make([][]byte, len(s.Shards))
	for i, sh := range s.Shards {
		before[i] = append([]byte(nil), sh...)
	}
	if err := s.Reconstruct(); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if !bytes.Equal(before[i], s.Shards[i]) {
			t.Fatal("no-loss reconstruct changed shards")
		}
	}
}

func TestDataConcatenation(t *testing.T) {
	data := [][]byte{[]byte("abcd"), []byte("efgh"), []byte("ijkl")}
	s, _ := Encode(RAID5, data)
	got, err := s.Data()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcdefghijkl" {
		t.Fatalf("Data = %q", got)
	}
}

func TestDataMissingShard(t *testing.T) {
	s, _ := Encode(RAID5, randShards(3, 4, 21))
	s.Shards[1] = nil
	if _, err := s.Data(); !errors.Is(err, ErrBadStripe) {
		t.Fatalf("err = %v, want ErrBadStripe", err)
	}
}

func TestValidateCatchesCorruptStripes(t *testing.T) {
	s, _ := Encode(RAID5, randShards(3, 4, 23))
	s.Shards = s.Shards[:2] // wrong shard count
	if err := s.Reconstruct(); !errors.Is(err, ErrBadStripe) {
		t.Fatalf("err = %v", err)
	}
	s2, _ := Encode(RAID5, randShards(3, 4, 23))
	s2.Shards[0] = []byte{1} // wrong length
	if err := s2.Reconstruct(); !errors.Is(err, ErrBadStripe) {
		t.Fatalf("err = %v", err)
	}
	s3 := &Stripe{Level: RAID5, DataShards: 1, Shards: [][]byte{nil, nil}}
	if err := s3.Reconstruct(); !errors.Is(err, ErrBadStripe) {
		t.Fatalf("all-nil err = %v", err)
	}
}

func TestLost(t *testing.T) {
	s, _ := Encode(RAID6, randShards(2, 4, 25))
	if len(s.Lost()) != 0 {
		t.Fatal("fresh stripe reports losses")
	}
	s.Shards[0] = nil
	s.Shards[3] = nil
	lost := s.Lost()
	if len(lost) != 2 || lost[0] != 0 || lost[1] != 3 {
		t.Fatalf("Lost = %v", lost)
	}
}

// Property: RAID-6 stripe reconstructs exactly for any double loss, for
// random shard counts and contents.
func TestRAID6ReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(6)
		n := 1 + rng.Intn(100)
		data := randShards(k, n, seed+1)
		s, err := Encode(RAID6, data)
		if err != nil {
			return false
		}
		total := len(s.Shards)
		a := rng.Intn(total)
		b := rng.Intn(total)
		for b == a {
			b = rng.Intn(total)
		}
		wa := append([]byte(nil), s.Shards[a]...)
		wb := append([]byte(nil), s.Shards[b]...)
		s.Shards[a] = nil
		s.Shards[b] = nil
		if err := s.Reconstruct(); err != nil {
			return false
		}
		if !bytes.Equal(s.Shards[a], wa) || !bytes.Equal(s.Shards[b], wb) {
			return false
		}
		got, err := s.Data()
		if err != nil {
			return false
		}
		want := bytes.Join(data, nil)
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: parity is linear — flipping one bit of one data shard flips the
// same bit of P.
func TestRAID5ParityLinearityProperty(t *testing.T) {
	f := func(seed int64, bit uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(4)
		n := 4 + rng.Intn(32)
		data := randShards(k, n, seed+2)
		s1, _ := Encode(RAID5, data)
		pos := int(bit) % n
		which := rng.Intn(k)
		data[which][pos] ^= 0x01
		s2, _ := Encode(RAID5, data)
		for i := 0; i < n; i++ {
			want := s1.Shards[k][i]
			if i == pos {
				want ^= 0x01
			}
			if s2.Shards[k][i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
