package raid

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchShards builds k equal-length data shards of shardLen random bytes.
func benchShards(k, shardLen int) [][]byte {
	rng := rand.New(rand.NewSource(42))
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, shardLen)
		rng.Read(data[i])
	}
	return data
}

// BenchmarkStripe measures full-stripe parity encoding. The 64KiB shard
// size is the acceptance point for the kernel speedup; RAID-6 exercises
// both the XOR (P) and GF-multiply (Q) kernels.
func BenchmarkStripe(b *testing.B) {
	const shardLen = 64 << 10
	for _, level := range []Level{RAID5, RAID6} {
		data := benchShards(4, shardLen)
		b.Run(fmt.Sprintf("%v/64KiB", level), func(b *testing.B) {
			b.SetBytes(int64(4 * shardLen))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Encode(level, data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReconstruct measures the worst-case RAID-6 repair: two data
// shards lost, recovered through the P/Q solve.
func BenchmarkReconstruct(b *testing.B) {
	const shardLen = 64 << 10
	data := benchShards(4, shardLen)
	s, err := Encode(RAID6, data)
	if err != nil {
		b.Fatal(err)
	}
	shards := make([][]byte, len(s.Shards))
	b.Run("raid6/2data/64KiB", func(b *testing.B) {
		b.SetBytes(int64(4 * shardLen))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(shards, s.Shards)
			shards[1], shards[2] = nil, nil
			st := &Stripe{Level: RAID6, Shards: shards, DataShards: 4}
			if err := st.Reconstruct(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
