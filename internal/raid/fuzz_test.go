package raid

import (
	"bytes"
	"testing"
)

// FuzzKernels cross-checks every optimized kernel against the retained
// scalar reference implementations on arbitrary inputs: the optimized
// data plane is only trusted because it is byte-identical to the slow,
// obviously-correct scalar code.
func FuzzKernels(f *testing.F) {
	f.Add([]byte{}, byte(0))
	f.Add([]byte{1}, byte(1))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8}, byte(2))
	f.Add(bytes.Repeat([]byte{0xFF}, 64), byte(255))
	f.Add(bytes.Repeat([]byte{0xA5}, 257), byte(29))
	f.Fuzz(func(t *testing.T, data []byte, c byte) {
		// Split the input into a src/dst pair of equal length.
		n := len(data) / 2
		src, base := data[:n], data[n:2*n]

		got, want := append([]byte(nil), base...), append([]byte(nil), base...)
		xorSlice(got, src)
		xorSliceRef(want, src)
		if !bytes.Equal(got, want) {
			t.Fatalf("xorSlice diverges from reference (n=%d)", n)
		}

		tab := makeMulTable(c)
		got, want = append([]byte(nil), base...), append([]byte(nil), base...)
		tab.mulSliceXor(src, got)
		mulSliceXorRef(c, src, want)
		if !bytes.Equal(got, want) {
			t.Fatalf("mulSliceXor diverges from reference (n=%d c=%d)", n, c)
		}

		got, want = make([]byte, n), make([]byte, n)
		tab.mulSlice(src, got)
		mulSliceRef(c, src, want)
		if !bytes.Equal(got, want) {
			t.Fatalf("mulSlice diverges from reference (n=%d c=%d)", n, c)
		}

		got = append([]byte(nil), src...)
		mul2Slice(got)
		mulSliceRef(2, src, want)
		if !bytes.Equal(got, want) {
			t.Fatalf("mul2Slice diverges from reference (n=%d)", n)
		}

		got = append([]byte(nil), base...)
		mul2SliceXor(got, src)
		for i := range want {
			want[i] = gfMul(2, base[i]) ^ src[i]
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("mul2SliceXor diverges from reference (n=%d)", n)
		}

		// Parity over a small stripe assembled from the fuzz bytes.
		if n >= 2 {
			half := n / 2
			shards := [][]byte{src[:half], base[:half]}
			p, q := make([]byte, half), make([]byte, half)
			parityPQ(shards, p, q)
			rp, rq := make([]byte, half), make([]byte, half)
			refParityPQ(shards, rp, rq)
			if !bytes.Equal(p, rp) || !bytes.Equal(q, rq) {
				t.Fatalf("parityPQ diverges from reference (len=%d)", half)
			}
		}
	})
}

// FuzzEncodeReconstruct round-trips arbitrary data through RAID-6
// encode, knocks out two shards, and requires bit-exact reconstruction.
func FuzzEncodeReconstruct(f *testing.F) {
	f.Add([]byte("hello world, this is a stripe"), uint8(0), uint8(1))
	f.Add(bytes.Repeat([]byte{7}, 64), uint8(1), uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, lossA, lossB uint8) {
		if len(data) < 4 {
			return
		}
		shardLen := len(data) / 4
		shards := make([][]byte, 4)
		for i := range shards {
			shards[i] = data[i*shardLen : (i+1)*shardLen]
		}
		s, err := Encode(RAID6, shards)
		if err != nil {
			t.Fatal(err)
		}
		want := make([][]byte, len(s.Shards))
		for i, sh := range s.Shards {
			want[i] = append([]byte(nil), sh...)
		}
		a, b := int(lossA)%6, int(lossB)%6
		s.Shards[a] = nil
		s.Shards[b] = nil
		err = s.Reconstruct()
		// Losing two data shards plus parity is impossible here (at most
		// two indices are nil), so reconstruction must succeed.
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !bytes.Equal(s.Shards[i], want[i]) {
				t.Fatalf("shard %d not restored bit-exact", i)
			}
		}
	})
}
