package raid

import (
	"testing"
	"testing/quick"
)

func TestGFMulBasics(t *testing.T) {
	if gfMul(0, 5) != 0 || gfMul(5, 0) != 0 {
		t.Fatal("0 not absorbing")
	}
	if gfMul(1, 77) != 77 || gfMul(77, 1) != 77 {
		t.Fatal("1 not identity")
	}
	// Known values under the RAID-6 polynomial 0x11D.
	if got := gfMul(2, 2); got != 4 {
		t.Fatalf("2*2 = %#x, want 4", got)
	}
	if got := gfMul(0x80, 2); got != 0x1D {
		t.Fatalf("0x80*2 = %#x, want 0x1D (reduction by 0x11D)", got)
	}
}

func TestGFDivInverse(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := gfInv(byte(a))
		if gfMul(byte(a), inv) != 1 {
			t.Fatalf("a=%d: a·a⁻¹ != 1", a)
		}
		if gfDiv(byte(a), byte(a)) != 1 {
			t.Fatalf("a=%d: a/a != 1", a)
		}
	}
}

func TestGFDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	gfDiv(3, 0)
}

func TestGFInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	gfInv(0)
}

func TestGFPowCycle(t *testing.T) {
	if gfPow(0) != 1 {
		t.Fatalf("g^0 = %d", gfPow(0))
	}
	if gfPow(255) != 1 {
		t.Fatalf("g^255 = %d, want 1 (multiplicative order)", gfPow(255))
	}
	if gfPow(-1) != gfPow(254) {
		t.Fatal("negative exponent not normalized")
	}
	// Distinct powers for 0..254 (generator property).
	seen := map[byte]bool{}
	for i := 0; i < 255; i++ {
		v := gfPow(i)
		if seen[v] {
			t.Fatalf("g^%d repeats value %d", i, v)
		}
		seen[v] = true
	}
}

// Field laws via testing/quick.
func TestGFMulCommutativeAssociativeProperty(t *testing.T) {
	comm := func(a, b byte) bool { return gfMul(a, b) == gfMul(b, a) }
	if err := quick.Check(comm, nil); err != nil {
		t.Fatal(err)
	}
	assoc := func(a, b, c byte) bool { return gfMul(gfMul(a, b), c) == gfMul(a, gfMul(b, c)) }
	if err := quick.Check(assoc, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFDistributiveProperty(t *testing.T) {
	// Addition in GF(2^8) is XOR.
	dist := func(a, b, c byte) bool { return gfMul(a, b^c) == gfMul(a, b)^gfMul(a, c) }
	if err := quick.Check(dist, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFDivMulRoundTripProperty(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return gfMul(gfDiv(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulSliceXor(t *testing.T) {
	src := []byte{1, 2, 3}
	dst := []byte{10, 20, 30}
	mulSliceXorRef(0, src, dst)
	if dst[0] != 10 {
		t.Fatal("c=0 must be a no-op")
	}
	mulSliceXorRef(1, src, dst)
	if dst[0] != 11 || dst[1] != 22 || dst[2] != 29 {
		t.Fatalf("c=1 XOR wrong: %v", dst)
	}
	dst2 := make([]byte, 3)
	mulSliceXorRef(7, src, dst2)
	for i := range src {
		if dst2[i] != gfMul(7, src[i]) {
			t.Fatalf("dst2[%d] = %d, want %d", i, dst2[i], gfMul(7, src[i]))
		}
	}
}
