package raid

import (
	"errors"
	"fmt"
)

// Level selects the redundancy scheme applied to a stripe of chunks.
type Level int

const (
	// None stores data shards with no parity (the single-provider
	// baseline's durability story).
	None Level = 0
	// RAID5 adds one XOR parity shard; tolerates one lost shard.
	RAID5 Level = 5
	// RAID6 adds P (XOR) and Q (Reed–Solomon) shards; tolerates two.
	RAID6 Level = 6
)

func (l Level) String() string {
	switch l {
	case None:
		return "none"
	case RAID5:
		return "raid5"
	case RAID6:
		return "raid6"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// ParityShards returns how many parity shards the level adds per stripe.
func (l Level) ParityShards() int {
	switch l {
	case RAID5:
		return 1
	case RAID6:
		return 2
	default:
		return 0
	}
}

// Valid reports whether l is a supported level.
func (l Level) Valid() bool { return l == None || l == RAID5 || l == RAID6 }

// ErrTooManyLost is returned when more shards are missing than the level
// tolerates.
var ErrTooManyLost = errors.New("raid: too many lost shards for this level")

// ErrBadStripe is returned for malformed stripes.
var ErrBadStripe = errors.New("raid: malformed stripe")

// Stripe is one erasure-coded group: Data shards followed by parity
// shards. All shards have equal length (data is zero-padded by Encode).
type Stripe struct {
	Level Level
	// Shards holds data shards then parity shards (P, then Q for RAID6).
	// A nil entry marks a lost shard.
	Shards [][]byte
	// DataShards is the number of leading data shards.
	DataShards int
}

// Encode erasure-codes equal-length data shards into a stripe. Shards must
// be non-empty and of equal length. The input slices are not retained.
func Encode(level Level, data [][]byte) (*Stripe, error) {
	if !level.Valid() {
		return nil, fmt.Errorf("%w: unsupported level %v", ErrBadStripe, level)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: no data shards", ErrBadStripe)
	}
	shardLen := len(data[0])
	for i, d := range data {
		if len(d) != shardLen {
			return nil, fmt.Errorf("%w: shard %d has %d bytes, want %d", ErrBadStripe, i, len(d), shardLen)
		}
	}
	k := len(data)
	s := &Stripe{Level: level, DataShards: k}
	s.Shards = make([][]byte, k+level.ParityShards())
	for i, d := range data {
		cp := make([]byte, shardLen)
		copy(cp, d)
		s.Shards[i] = cp
	}
	switch level {
	case RAID5:
		p := make([]byte, shardLen)
		for _, d := range data {
			xorSlice(p, d)
		}
		s.Shards[k] = p
	case RAID6:
		p := make([]byte, shardLen)
		q := make([]byte, shardLen)
		parityPQ(data, p, q)
		s.Shards[k] = p
		s.Shards[k+1] = q
	}
	return s, nil
}

// ParityInto computes level's parity shards over equal-length data
// shards directly into the caller's buffers, without copying the data
// or allocating: parity must hold level.ParityShards() slices, each of
// the shards' length (contents are overwritten). This is the
// allocation-free kernel entry the distributor's write path uses; the
// data slices are not retained.
func ParityInto(level Level, data [][]byte, parity [][]byte) error {
	if !level.Valid() {
		return fmt.Errorf("%w: unsupported level %v", ErrBadStripe, level)
	}
	if len(data) == 0 {
		return fmt.Errorf("%w: no data shards", ErrBadStripe)
	}
	shardLen := len(data[0])
	for i, d := range data {
		if len(d) != shardLen {
			return fmt.Errorf("%w: shard %d has %d bytes, want %d", ErrBadStripe, i, len(d), shardLen)
		}
	}
	if len(parity) != level.ParityShards() {
		return fmt.Errorf("%w: %d parity buffers for %v", ErrBadStripe, len(parity), level)
	}
	for i, p := range parity {
		if len(p) != shardLen {
			return fmt.Errorf("%w: parity buffer %d has %d bytes, want %d", ErrBadStripe, i, len(p), shardLen)
		}
	}
	switch level {
	case RAID5:
		p := parity[0]
		for i := range p {
			p[i] = 0
		}
		for _, d := range data {
			xorSlice(p, d)
		}
	case RAID6:
		parityPQ(data, parity[0], parity[1])
	}
	return nil
}

// Lost returns the indices of nil shards.
func (s *Stripe) Lost() []int {
	var lost []int
	for i, sh := range s.Shards {
		if sh == nil {
			lost = append(lost, i)
		}
	}
	return lost
}

// Reconstruct fills in nil shards if the level's tolerance allows. After a
// successful call every shard is non-nil.
func (s *Stripe) Reconstruct() error {
	if err := s.validate(); err != nil {
		return err
	}
	lost := s.Lost()
	if len(lost) == 0 {
		return nil
	}
	if len(lost) > s.Level.ParityShards() {
		return fmt.Errorf("%w: %d lost, %v tolerates %d", ErrTooManyLost, len(lost), s.Level, s.Level.ParityShards())
	}
	shardLen := s.shardLen()
	k := s.DataShards

	switch s.Level {
	case RAID5:
		// Single loss: XOR of all surviving shards.
		miss := lost[0]
		rec := make([]byte, shardLen)
		for i, sh := range s.Shards {
			if i == miss {
				continue
			}
			xorSlice(rec, sh)
		}
		s.Shards[miss] = rec
	case RAID6:
		return s.reconstructRAID6(lost, k, shardLen)
	default:
		return fmt.Errorf("%w: %d lost, level none tolerates 0", ErrTooManyLost, len(lost))
	}
	return nil
}

func (s *Stripe) reconstructRAID6(lost []int, k, shardLen int) error {
	pIdx, qIdx := k, k+1
	isLost := make([]bool, k+2)
	for _, l := range lost {
		isLost[l] = true
	}
	var lostData []int
	for _, l := range lost {
		if l < k {
			lostData = append(lostData, l)
		}
	}

	// Recompute helpers over surviving data shards. partialQ runs the
	// same Horner recurrence as encoding — a skipped or missing member
	// contributes zero but still takes its mul-by-g step, so only
	// word-wide mul2 kernels are ever needed.
	partialP := func(skipA, skipB int) []byte {
		p := make([]byte, shardLen)
		for j := 0; j < k; j++ {
			if j == skipA || j == skipB || s.Shards[j] == nil {
				continue
			}
			xorSlice(p, s.Shards[j])
		}
		return p
	}
	partialQ := func(skipA, skipB int) []byte {
		q := make([]byte, shardLen)
		for j := k - 1; j >= 0; j-- {
			if j == skipA || j == skipB || s.Shards[j] == nil {
				mul2Slice(q)
				continue
			}
			mul2SliceXor(q, s.Shards[j])
		}
		return q
	}

	switch len(lostData) {
	case 0:
		// Only parity lost: recompute.
		if isLost[pIdx] {
			s.Shards[pIdx] = partialP(-1, -1)
		}
		if isLost[qIdx] {
			s.Shards[qIdx] = partialQ(-1, -1)
		}
	case 1:
		d := lostData[0]
		if !isLost[pIdx] {
			// Recover from P like RAID-5 over data+P.
			rec := partialP(d, -1)
			xorSlice(rec, s.Shards[pIdx])
			s.Shards[d] = rec
			if isLost[qIdx] {
				s.Shards[qIdx] = partialQ(-1, -1)
			}
		} else {
			// P lost too (or only Q available): recover d from Q.
			rec := partialQ(d, -1)
			xorSlice(rec, s.Shards[qIdx])
			inv := makeMulTable(gfInv(gfPow(d)))
			inv.mulSlice(rec, rec)
			s.Shards[d] = rec
			if isLost[pIdx] {
				s.Shards[pIdx] = partialP(-1, -1)
			}
		}
	case 2:
		// Two data shards lost: need both P and Q intact.
		if isLost[pIdx] || isLost[qIdx] {
			return fmt.Errorf("%w: 2 data shards plus parity lost", ErrTooManyLost)
		}
		a, b := lostData[0], lostData[1]
		// P ⊕ partialP = D_a ⊕ D_b            =: pr
		// Q ⊕ partialQ = g^a·D_a ⊕ g^b·D_b   =: qr
		pr := partialP(a, b)
		qr := partialQ(a, b)
		xorSlice(pr, s.Shards[pIdx])
		xorSlice(qr, s.Shards[qIdx])
		// D_a = (qr + g^b·pr) / (g^a + g^b); solveTwoLoss fuses the two
		// table multiplies into one word-wide pass.
		dA := make([]byte, shardLen)
		dB := make([]byte, shardLen)
		solveTwoLoss(pr, qr, dA, dB, a, b)
		s.Shards[a] = dA
		s.Shards[b] = dB
	}
	return nil
}

// Data returns the concatenated data shards (parity excluded). All data
// shards must be present; call Reconstruct first if any were lost.
func (s *Stripe) Data() ([]byte, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	out := make([]byte, 0, s.DataShards*s.shardLen())
	for i := 0; i < s.DataShards; i++ {
		if s.Shards[i] == nil {
			return nil, fmt.Errorf("%w: data shard %d missing", ErrBadStripe, i)
		}
		out = append(out, s.Shards[i]...)
	}
	return out, nil
}

func (s *Stripe) shardLen() int {
	for _, sh := range s.Shards {
		if sh != nil {
			return len(sh)
		}
	}
	return 0
}

func (s *Stripe) validate() error {
	if !s.Level.Valid() {
		return fmt.Errorf("%w: unsupported level %v", ErrBadStripe, s.Level)
	}
	want := s.DataShards + s.Level.ParityShards()
	if s.DataShards < 1 || len(s.Shards) != want {
		return fmt.Errorf("%w: %d shards for %d data + %v", ErrBadStripe, len(s.Shards), s.DataShards, s.Level)
	}
	l := -1
	for i, sh := range s.Shards {
		if sh == nil {
			continue
		}
		if l == -1 {
			l = len(sh)
		} else if len(sh) != l {
			return fmt.Errorf("%w: shard %d has %d bytes, want %d", ErrBadStripe, i, len(sh), l)
		}
	}
	if l <= 0 {
		return fmt.Errorf("%w: all shards missing or empty", ErrBadStripe)
	}
	return nil
}
