// Package raid implements the redundancy layer the distributor applies
// while scattering chunks ("the distributor applies Redundant Array of
// Independent Disks (RAID) strategy... The default choice is RAID level 5.
// In case of higher assurance, RAID level 6 is used."). Each cloud
// provider plays the role of one disk. RAID-5 adds one XOR parity shard
// per stripe and survives one provider outage; RAID-6 adds P (XOR) and Q
// (Reed–Solomon over GF(2^8)) shards and survives two.
package raid

// GF(2^8) arithmetic with the polynomial x^8+x^4+x^3+x^2+1 (0x11D) — the
// standard RAID-6 field, in which 2 is a primitive element — implemented
// with log/antilog tables built at init.

const gfPoly = 0x11D

var (
	gfExp [512]byte // generator powers, doubled to skip mod 255
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies in GF(2^8).
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides in GF(2^8); division by zero panics (programming error).
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("raid: GF(2^8) division by zero")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse.
func gfInv(a byte) byte {
	if a == 0 {
		panic("raid: GF(2^8) inverse of zero")
	}
	return gfExp[255-int(gfLog[a])]
}

// gfPow returns g^n for the field generator g = 2.
func gfPow(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return gfExp[n]
}

// The three slice kernels below are the scalar reference
// implementations: one byte per iteration through the log/antilog
// tables. The optimized word-wide kernels in kernels.go are verified
// byte-identical against them (kernels_test.go, fuzz_test.go); the hot
// paths in raid.go call the optimized versions.

// mulSliceXorRef computes dst[i] ^= c * src[i] for all i.
func mulSliceXorRef(c byte, src, dst []byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	logC := int(gfLog[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[logC+int(gfLog[s])]
		}
	}
}

// mulSliceRef computes dst[i] = c * src[i] for all i.
func mulSliceRef(c byte, src, dst []byte) {
	for i, s := range src {
		dst[i] = gfMul(c, s)
	}
}

// xorSliceRef computes dst[i] ^= src[i] one byte at a time.
func xorSliceRef(dst, src []byte) {
	for i, s := range src {
		dst[i] ^= s
	}
}
