package raid

import (
	"encoding/binary"
	"unsafe"
)

// Optimized data-plane kernels. The scalar log/antilog kernels in
// gf256.go remain the reference implementation; everything here is
// cross-checked against them byte-for-byte by the property and fuzz
// tests in kernels_test.go / fuzz_test.go.
//
// Three techniques, all pure Go:
//
//   - XOR parity runs over uint64 words (8 bytes per iteration) with a
//     byte tail, instead of byte-at-a-time. Aligned slices are viewed
//     as []uint64 directly; misaligned or short slices fall back to
//     encoding/binary word loads and a byte tail.
//   - Q parity uses Horner's rule over the stripe: Q = D_0 + g·(D_1 +
//     g·(D_2 + ...)), so the inner loop only ever multiplies by the
//     generator g = 2 — a five-op SWAR step on a packed word — instead
//     of a general GF multiply per byte.
//   - General GF multiplies (the reconstruction solve) use per-
//     coefficient split-nibble lookup tables (two 16-entry tables,
//     built once per call) for the byte path, and the tables' power
//     basis for a word-wide bit-broadcast bulk path.

const (
	lsbMask = 0x0101010101010101 // low bit of every byte lane
	msbMask = 0x8080808080808080 // high bit of every byte lane
)

// words views b as machine words when its base is 8-byte aligned (true
// for every heap-allocated buffer the data plane makes; only odd
// subslices miss). Returns nil when the fast path does not apply; the
// caller then takes the encoding/binary fallback.
func words(b []byte) []uint64 {
	if len(b) < 8 || uintptr(unsafe.Pointer(&b[0]))&7 != 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// xorSlice computes dst[i] ^= src[i] word-wide. len(src) must not
// exceed len(dst).
func xorSlice(dst, src []byte) {
	n := len(src)
	i := 0
	if dw, sw := words(dst), words(src); dw != nil && sw != nil {
		sw = sw[:n/8]
		dw = dw[:len(sw)]
		for k := range sw {
			dw[k] ^= sw[k]
		}
		i = n &^ 7
	} else {
		for ; i+8 <= n; i += 8 {
			binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
		}
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// mul2w multiplies every byte lane of w by the generator g = 2 in
// GF(2^8) mod 0x11D: shift left, then fold the overflow bit back in as
// 0x1D. The (hi>>7)*0x1D product cannot carry across lanes because each
// lane of hi>>7 is 0 or 1 and 0x1D < 0x100.
func mul2w(w uint64) uint64 {
	hi := w & msbMask
	return ((w ^ hi) << 1) ^ ((hi >> 7) * 0x1D)
}

// mul2b is the byte-tail version of mul2w.
func mul2b(b byte) byte {
	if b&0x80 != 0 {
		return (b << 1) ^ 0x1D
	}
	return b << 1
}

// mul2Slice computes q[i] = 2·q[i] — one Horner step with no data shard
// (a skipped or missing member contributes zero).
func mul2Slice(q []byte) {
	n := len(q)
	i := 0
	if qw := words(q); qw != nil {
		for k := range qw {
			qw[k] = mul2w(qw[k])
		}
		i = n &^ 7
	} else {
		for ; i+8 <= n; i += 8 {
			binary.LittleEndian.PutUint64(q[i:], mul2w(binary.LittleEndian.Uint64(q[i:])))
		}
	}
	for ; i < n; i++ {
		q[i] = mul2b(q[i])
	}
}

// mul2SliceXor computes q[i] = 2·q[i] ^ d[i] — one Horner step folding
// in data shard d. len(d) must not exceed len(q).
func mul2SliceXor(q, d []byte) {
	n := len(d)
	i := 0
	if qw, dw := words(q), words(d); qw != nil && dw != nil {
		dw = dw[:n/8]
		qw = qw[:len(dw)]
		for k := range dw {
			qw[k] = mul2w(qw[k]) ^ dw[k]
		}
		i = n &^ 7
	} else {
		for ; i+8 <= n; i += 8 {
			qw := mul2w(binary.LittleEndian.Uint64(q[i:])) ^ binary.LittleEndian.Uint64(d[i:])
			binary.LittleEndian.PutUint64(q[i:], qw)
		}
	}
	for ; i < n; i++ {
		q[i] = mul2b(q[i]) ^ d[i]
	}
}

// parityPQ fills p and q (both len shardLen, contents overwritten) with
// the RAID-6 parities of the equal-length data shards: p = ⊕ D_j,
// q = Σ g^j·D_j, computed by Horner so only mul-by-2 steps are needed.
func parityPQ(data [][]byte, p, q []byte) {
	for i := range p {
		p[i] = 0
		q[i] = 0
	}
	for j := len(data) - 1; j >= 0; j-- {
		d := data[j]
		n := len(d)
		i := 0
		if pw, qw, dw := words(p), words(q), words(d); pw != nil && qw != nil && dw != nil {
			dw = dw[:n/8]
			pw = pw[:len(dw)]
			qw = qw[:len(dw)]
			for k := range dw {
				v := dw[k]
				pw[k] ^= v
				qw[k] = mul2w(qw[k]) ^ v
			}
			i = n &^ 7
		} else {
			for ; i+8 <= n; i += 8 {
				dv := binary.LittleEndian.Uint64(d[i:])
				binary.LittleEndian.PutUint64(p[i:], binary.LittleEndian.Uint64(p[i:])^dv)
				binary.LittleEndian.PutUint64(q[i:], mul2w(binary.LittleEndian.Uint64(q[i:]))^dv)
			}
		}
		for ; i < n; i++ {
			p[i] ^= d[i]
			q[i] = mul2b(q[i]) ^ d[i]
		}
	}
}

// mulTable holds the split-nibble lookup tables for one fixed GF(2^8)
// coefficient c: lo[x] = c·x and hi[x] = c·(x<<4), so c·b =
// lo[b&0xF] ^ hi[b>>4] with two 16-entry lookups and no branches. pow
// caches the bit basis c·2^i (drawn straight from the tables) widened
// for the word-wide bit-broadcast path.
type mulTable struct {
	lo, hi [16]byte
	pow    [8]uint64
}

// makeMulTable builds the split-nibble tables for coefficient c using
// the scalar reference multiply. Built once per Stripe/Reconstruct
// call; 40 table bytes per coefficient.
func makeMulTable(c byte) mulTable {
	var t mulTable
	for x := 0; x < 16; x++ {
		t.lo[x] = gfMul(c, byte(x))
		t.hi[x] = gfMul(c, byte(x<<4))
	}
	for i := 0; i < 4; i++ {
		t.pow[i] = uint64(t.lo[1<<i])
		t.pow[4+i] = uint64(t.hi[1<<i])
	}
	return t
}

// at multiplies a single byte through the split-nibble tables.
func (t *mulTable) at(b byte) byte { return t.lo[b&0x0F] ^ t.hi[b>>4] }

// mulWord multiplies every byte lane of w by the table's coefficient:
// each input bit plane is broadcast to a 0/1 lane mask and scaled by the
// basis product c·2^i; lane products stay below 0x100 so the uint64
// multiplies cannot carry across lanes. The hot loops below inline this
// expression with the basis hoisted into locals — the 8-step chain is
// past the compiler's inlining budget, and a call per word costs more
// than the multiplies (keep the copies in sync).
func (t *mulTable) mulWord(w uint64) uint64 {
	acc := (w & lsbMask) * t.pow[0]
	acc ^= (w >> 1 & lsbMask) * t.pow[1]
	acc ^= (w >> 2 & lsbMask) * t.pow[2]
	acc ^= (w >> 3 & lsbMask) * t.pow[3]
	acc ^= (w >> 4 & lsbMask) * t.pow[4]
	acc ^= (w >> 5 & lsbMask) * t.pow[5]
	acc ^= (w >> 6 & lsbMask) * t.pow[6]
	acc ^= (w >> 7 & lsbMask) * t.pow[7]
	return acc
}

// mulSliceXor computes dst[i] ^= c·src[i]. len(src) must not exceed
// len(dst).
func (t *mulTable) mulSliceXor(src, dst []byte) {
	n := len(src)
	i := 0
	if dw, sw := words(dst), words(src); dw != nil && sw != nil {
		sw = sw[:n/8]
		dw = dw[:len(sw)]
		c0, c1, c2, c3 := t.pow[0], t.pow[1], t.pow[2], t.pow[3]
		c4, c5, c6, c7 := t.pow[4], t.pow[5], t.pow[6], t.pow[7]
		for k := range sw {
			w := sw[k]
			acc := (w & lsbMask) * c0
			acc ^= (w >> 1 & lsbMask) * c1
			acc ^= (w >> 2 & lsbMask) * c2
			acc ^= (w >> 3 & lsbMask) * c3
			acc ^= (w >> 4 & lsbMask) * c4
			acc ^= (w >> 5 & lsbMask) * c5
			acc ^= (w >> 6 & lsbMask) * c6
			acc ^= (w >> 7 & lsbMask) * c7
			dw[k] ^= acc
		}
		i = n &^ 7
	} else {
		for ; i+8 <= n; i += 8 {
			dv := binary.LittleEndian.Uint64(dst[i:]) ^ t.mulWord(binary.LittleEndian.Uint64(src[i:]))
			binary.LittleEndian.PutUint64(dst[i:], dv)
		}
	}
	for ; i < n; i++ {
		dst[i] ^= t.at(src[i])
	}
}

// mulSlice computes dst[i] = c·src[i]. len(src) must not exceed
// len(dst); src and dst may be the same slice.
func (t *mulTable) mulSlice(src, dst []byte) {
	n := len(src)
	i := 0
	if dw, sw := words(dst), words(src); dw != nil && sw != nil {
		sw = sw[:n/8]
		dw = dw[:len(sw)]
		c0, c1, c2, c3 := t.pow[0], t.pow[1], t.pow[2], t.pow[3]
		c4, c5, c6, c7 := t.pow[4], t.pow[5], t.pow[6], t.pow[7]
		for k := range sw {
			w := sw[k]
			acc := (w & lsbMask) * c0
			acc ^= (w >> 1 & lsbMask) * c1
			acc ^= (w >> 2 & lsbMask) * c2
			acc ^= (w >> 3 & lsbMask) * c3
			acc ^= (w >> 4 & lsbMask) * c4
			acc ^= (w >> 5 & lsbMask) * c5
			acc ^= (w >> 6 & lsbMask) * c6
			acc ^= (w >> 7 & lsbMask) * c7
			dw[k] = acc
		}
		i = n &^ 7
	} else {
		for ; i+8 <= n; i += 8 {
			binary.LittleEndian.PutUint64(dst[i:], t.mulWord(binary.LittleEndian.Uint64(src[i:])))
		}
	}
	for ; i < n; i++ {
		dst[i] = t.at(src[i])
	}
}

// solveTwoLoss recovers two lost data shards from the parity residues:
// given pr = D_a ⊕ D_b and qr = g^a·D_a ⊕ g^b·D_b, computes
// dA = (qr ⊕ g^b·pr) / (g^a ⊕ g^b) and dB = pr ⊕ dA in one fused pass.
// The divide is distributed over the xor — dA = cq·qr ⊕ cp·pr with
// cq = 1/(g^a⊕g^b), cp = g^b/(g^a⊕g^b) — so the two table multiplies
// are independent and overlap instead of forming one serial chain.
func solveTwoLoss(pr, qr, dA, dB []byte, a, b int) {
	inv := gfInv(gfPow(a) ^ gfPow(b))
	cq := makeMulTable(inv)
	cp := makeMulTable(gfMul(inv, gfPow(b)))
	n := len(pr)
	i := 0
	if prw, qrw, daw, dbw := words(pr), words(qr), words(dA), words(dB); prw != nil && qrw != nil && daw != nil && dbw != nil {
		prw = prw[:n/8]
		qrw = qrw[:len(prw)]
		daw = daw[:len(prw)]
		dbw = dbw[:len(prw)]
		q0, q1, q2, q3 := cq.pow[0], cq.pow[1], cq.pow[2], cq.pow[3]
		q4, q5, q6, q7 := cq.pow[4], cq.pow[5], cq.pow[6], cq.pow[7]
		p0, p1, p2, p3 := cp.pow[0], cp.pow[1], cp.pow[2], cp.pow[3]
		p4, p5, p6, p7 := cp.pow[4], cp.pow[5], cp.pow[6], cp.pow[7]
		for k := range prw {
			pv, qv := prw[k], qrw[k]
			da := (qv & lsbMask) * q0
			da ^= (qv >> 1 & lsbMask) * q1
			da ^= (qv >> 2 & lsbMask) * q2
			da ^= (qv >> 3 & lsbMask) * q3
			da ^= (qv >> 4 & lsbMask) * q4
			da ^= (qv >> 5 & lsbMask) * q5
			da ^= (qv >> 6 & lsbMask) * q6
			da ^= (qv >> 7 & lsbMask) * q7
			da ^= (pv & lsbMask) * p0
			da ^= (pv >> 1 & lsbMask) * p1
			da ^= (pv >> 2 & lsbMask) * p2
			da ^= (pv >> 3 & lsbMask) * p3
			da ^= (pv >> 4 & lsbMask) * p4
			da ^= (pv >> 5 & lsbMask) * p5
			da ^= (pv >> 6 & lsbMask) * p6
			da ^= (pv >> 7 & lsbMask) * p7
			daw[k] = da
			dbw[k] = pv ^ da
		}
		i = n &^ 7
	} else {
		for ; i+8 <= n; i += 8 {
			pv := binary.LittleEndian.Uint64(pr[i:])
			qv := binary.LittleEndian.Uint64(qr[i:])
			da := cq.mulWord(qv) ^ cp.mulWord(pv)
			binary.LittleEndian.PutUint64(dA[i:], da)
			binary.LittleEndian.PutUint64(dB[i:], pv^da)
		}
	}
	for ; i < n; i++ {
		da := cq.at(qr[i]) ^ cp.at(pr[i])
		dA[i] = da
		dB[i] = pr[i] ^ da
	}
}
