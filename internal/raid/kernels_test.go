package raid

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// refParityPQ is the scalar RAID-6 parity: the retained reference
// kernels applied shard by shard, exactly as Encode did before the
// word-wide kernels landed.
func refParityPQ(data [][]byte, p, q []byte) {
	for i := range p {
		p[i] = 0
		q[i] = 0
	}
	for j, d := range data {
		xorSliceRef(p, d)
		mulSliceXorRef(gfPow(j), d, q)
	}
}

// TestKernelsMatchReference is the property test the ISSUE requires:
// every optimized kernel must be byte-identical to its scalar reference
// for all lengths 0..257 and random coefficients — the range straddles
// the 8-byte word boundary and the 32-byte unrolled block in every
// phase combination.
func TestKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 0; n <= 257; n++ {
		src := make([]byte, n)
		base := make([]byte, n)
		rng.Read(src)
		rng.Read(base)

		// xorSlice vs xorSliceRef.
		got, want := append([]byte(nil), base...), append([]byte(nil), base...)
		xorSlice(got, src)
		xorSliceRef(want, src)
		if !bytes.Equal(got, want) {
			t.Fatalf("xorSlice mismatch at n=%d", n)
		}

		// mul2Slice / mul2SliceXor vs the reference multiply by g=2.
		got = append([]byte(nil), base...)
		mul2Slice(got)
		want = make([]byte, n)
		mulSliceRef(2, base, want)
		if !bytes.Equal(got, want) {
			t.Fatalf("mul2Slice mismatch at n=%d", n)
		}
		got = append([]byte(nil), base...)
		mul2SliceXor(got, src)
		for i := range want {
			want[i] = gfMul(2, base[i]) ^ src[i]
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("mul2SliceXor mismatch at n=%d", n)
		}

		// Split-nibble table kernels vs the log/antilog reference, for a
		// random coefficient plus the edge coefficients 0, 1, 2, 255.
		for _, c := range []byte{0, 1, 2, 255, byte(rng.Intn(256))} {
			tab := makeMulTable(c)
			got, want = append([]byte(nil), base...), append([]byte(nil), base...)
			tab.mulSliceXor(src, got)
			mulSliceXorRef(c, src, want)
			if !bytes.Equal(got, want) {
				t.Fatalf("mulSliceXor mismatch at n=%d c=%d", n, c)
			}
			got, want = make([]byte, n), make([]byte, n)
			tab.mulSlice(src, got)
			mulSliceRef(c, src, want)
			if !bytes.Equal(got, want) {
				t.Fatalf("mulSlice mismatch at n=%d c=%d", n, c)
			}
			// In-place aliasing (src == dst) is part of the contract.
			got = append([]byte(nil), src...)
			tab.mulSlice(got, got)
			if !bytes.Equal(got, want) {
				t.Fatalf("in-place mulSlice mismatch at n=%d c=%d", n, c)
			}
		}

		// Horner-encoded parity vs the reference parity.
		for _, k := range []int{1, 2, 4, 7} {
			data := make([][]byte, k)
			for j := range data {
				data[j] = make([]byte, n)
				rng.Read(data[j])
			}
			p, q := make([]byte, n), make([]byte, n)
			parityPQ(data, p, q)
			rp, rq := make([]byte, n), make([]byte, n)
			refParityPQ(data, rp, rq)
			if !bytes.Equal(p, rp) || !bytes.Equal(q, rq) {
				t.Fatalf("parityPQ mismatch at n=%d k=%d", n, k)
			}
		}

		// Two-loss solve vs the per-byte gfDiv/gfMul formula.
		a, b := rng.Intn(6), rng.Intn(6)
		if a == b {
			b = a + 1
		}
		pr, qr := make([]byte, n), make([]byte, n)
		rng.Read(pr)
		rng.Read(qr)
		dA, dB := make([]byte, n), make([]byte, n)
		solveTwoLoss(pr, qr, dA, dB, a, b)
		gb, denom := gfPow(b), gfPow(a)^gfPow(b)
		for i := 0; i < n; i++ {
			wantA := gfDiv(qr[i]^gfMul(gb, pr[i]), denom)
			if dA[i] != wantA || dB[i] != pr[i]^wantA {
				t.Fatalf("solveTwoLoss mismatch at n=%d i=%d", n, i)
			}
		}
	}
}

// TestParityIntoMatchesEncode pins ParityInto to Encode's parity for
// every level.
func TestParityIntoMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, level := range []Level{None, RAID5, RAID6} {
		for _, n := range []int{1, 9, 257} {
			data := make([][]byte, 4)
			for j := range data {
				data[j] = make([]byte, n)
				rng.Read(data[j])
			}
			parity := make([][]byte, level.ParityShards())
			for i := range parity {
				parity[i] = make([]byte, n)
			}
			if err := ParityInto(level, data, parity); err != nil {
				t.Fatal(err)
			}
			s, err := Encode(level, data)
			if err != nil {
				t.Fatal(err)
			}
			for i := range parity {
				if !bytes.Equal(parity[i], s.Shards[4+i]) {
					t.Fatalf("%v parity %d differs from Encode", level, i)
				}
			}
		}
	}
}

// TestParityIntoRejectsBadShapes covers the validation paths.
func TestParityIntoRejectsBadShapes(t *testing.T) {
	d := [][]byte{{1, 2}, {3, 4}}
	cases := []struct {
		name   string
		level  Level
		data   [][]byte
		parity [][]byte
	}{
		{"bad level", Level(9), d, nil},
		{"no data", RAID5, nil, [][]byte{{0, 0}}},
		{"ragged data", RAID5, [][]byte{{1, 2}, {3}}, [][]byte{{0, 0}}},
		{"parity count", RAID6, d, [][]byte{{0, 0}}},
		{"parity length", RAID5, d, [][]byte{{0}}},
	}
	for _, tc := range cases {
		if err := ParityInto(tc.level, tc.data, tc.parity); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

// BenchmarkParityKernel compares the retained scalar reference against
// the optimized word-wide kernels at the 64 KiB acceptance point —
// pure parity computation, no stripe allocation or data copies.
func BenchmarkParityKernel(b *testing.B) {
	const shardLen = 64 << 10
	data := benchShards(4, shardLen)
	p, q := make([]byte, shardLen), make([]byte, shardLen)
	b.Run("raid6/scalar/64KiB", func(b *testing.B) {
		b.SetBytes(int64(4 * shardLen))
		for i := 0; i < b.N; i++ {
			refParityPQ(data, p, q)
		}
	})
	b.Run("raid6/word/64KiB", func(b *testing.B) {
		b.SetBytes(int64(4 * shardLen))
		for i := 0; i < b.N; i++ {
			parityPQ(data, p, q)
		}
	})
}

// BenchmarkReconstructKernel compares the two-data-loss repair math
// (residues plus solve) scalar vs optimized, at 64 KiB shards.
func BenchmarkReconstructKernel(b *testing.B) {
	const shardLen = 64 << 10
	data := benchShards(4, shardLen)
	s, err := Encode(RAID6, data)
	if err != nil {
		b.Fatal(err)
	}
	run := func(name string, fn func()) {
		b.Run(fmt.Sprintf("raid6/2data/%s/64KiB", name), func(b *testing.B) {
			b.SetBytes(int64(4 * shardLen))
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
	}
	pr, qr := make([]byte, shardLen), make([]byte, shardLen)
	dA, dB := make([]byte, shardLen), make([]byte, shardLen)
	a, bIdx := 1, 2
	gb, denom := gfPow(bIdx), gfPow(a)^gfPow(bIdx)
	run("scalar", func() {
		copy(pr, s.Shards[4])
		copy(qr, s.Shards[5])
		for j := 0; j < 4; j++ {
			if j == a || j == bIdx {
				continue
			}
			xorSliceRef(pr, s.Shards[j])
			mulSliceXorRef(gfPow(j), s.Shards[j], qr)
		}
		for i := range pr {
			dA[i] = gfDiv(qr[i]^gfMul(gb, pr[i]), denom)
			dB[i] = pr[i] ^ dA[i]
		}
	})
	tmp := make([]byte, shardLen)
	run("word", func() {
		// Residues via the same skip-aware kernels Reconstruct uses.
		copy(pr, s.Shards[4])
		for i := range tmp {
			tmp[i] = 0
		}
		for j := 3; j >= 0; j-- {
			if j == a || j == bIdx {
				mul2Slice(tmp)
				continue
			}
			mul2SliceXor(tmp, s.Shards[j])
			xorSlice(pr, s.Shards[j])
		}
		copy(qr, s.Shards[5])
		xorSlice(qr, tmp)
		solveTwoLoss(pr, qr, dA, dB, a, bIdx)
	})
}
