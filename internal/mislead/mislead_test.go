package mislead

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestInjectStripRoundTrip(t *testing.T) {
	data := []byte("the original sensitive payload that must survive")
	rng := rand.New(rand.NewSource(3))
	inflated, inj, err := Inject(data, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(inflated) != len(data)+inj.Count() {
		t.Fatalf("inflated %d bytes, want %d+%d", len(inflated), len(data), inj.Count())
	}
	if inj.Count() == 0 {
		t.Fatal("no decoys injected at fraction 0.3")
	}
	got, err := Strip(inflated, inj)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("strip mismatch: %q", got)
	}
}

func TestInjectFractionValidation(t *testing.T) {
	if _, _, err := Inject([]byte("x"), -0.1, nil); err == nil {
		t.Fatal("negative fraction should error")
	}
	if _, _, err := Inject([]byte("x"), 1.5, nil); err == nil {
		t.Fatal("fraction > 1 should error")
	}
}

func TestInjectZeroFraction(t *testing.T) {
	data := []byte("unchanged")
	out, inj, err := Inject(data, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Count() != 0 || !bytes.Equal(out, data) {
		t.Fatalf("zero fraction changed data: %q, %d decoys", out, inj.Count())
	}
	// Must be a copy, not an alias.
	out[0] = 'X'
	if data[0] != 'u' {
		t.Fatal("Inject aliased input")
	}
}

func TestInjectEmptyPayload(t *testing.T) {
	out, inj, err := Inject(nil, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || inj.Count() != 0 {
		t.Fatalf("empty payload: out=%d decoys=%d", len(out), inj.Count())
	}
}

func TestInjectionValidate(t *testing.T) {
	if err := (Injection{Positions: []int{1, 3, 5}}).Validate(6); err != nil {
		t.Fatal(err)
	}
	if err := (Injection{Positions: []int{-1}}).Validate(6); err == nil {
		t.Fatal("negative position accepted")
	}
	if err := (Injection{Positions: []int{6}}).Validate(6); err == nil {
		t.Fatal("out-of-range position accepted")
	}
	if err := (Injection{Positions: []int{3, 3}}).Validate(6); err == nil {
		t.Fatal("duplicate position accepted")
	}
	if err := (Injection{Positions: []int{5, 2}}).Validate(6); err == nil {
		t.Fatal("unsorted positions accepted")
	}
}

func TestStripRejectsBadInjection(t *testing.T) {
	if _, err := Strip([]byte("abc"), Injection{Positions: []int{9}}); err == nil {
		t.Fatal("bad injection accepted by Strip")
	}
}

func TestStripNoDecoys(t *testing.T) {
	data := []byte("plain")
	got, err := Strip(data, Injection{})
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("got %q err %v", got, err)
	}
	got[0] = 'X'
	if data[0] != 'p' {
		t.Fatal("Strip aliased input")
	}
}

func TestDecoyBytesComeFromPayloadDistribution(t *testing.T) {
	// A payload of only 'A' bytes must yield only 'A' decoys.
	data := bytes.Repeat([]byte{'A'}, 1000)
	inflated, inj, err := Inject(data, 0.5, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if inj.Count() == 0 {
		t.Fatal("no decoys")
	}
	for _, b := range inflated {
		if b != 'A' {
			t.Fatalf("decoy byte %q stands out from payload", b)
		}
	}
}

func TestInjectLinesRoundTrip(t *testing.T) {
	data := []byte("r1,a\nr2,b\nr3,c\n")
	decoys := [][]byte{[]byte("fake1,x"), []byte("fake2,y\n")}
	inflated, inj, err := InjectLines(data, decoys, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(inflated, []byte("fake1,x")) || !bytes.Contains(inflated, []byte("fake2,y")) {
		t.Fatalf("decoys missing: %q", inflated)
	}
	got, err := Strip(inflated, inj)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("strip mismatch: %q", got)
	}
	// Decoy lines must be whole lines (count rises by exactly 2).
	origLines := strings.Count(string(data), "\n")
	inflLines := strings.Count(string(inflated), "\n")
	if inflLines != origLines+2 {
		t.Fatalf("lines %d → %d, want +2", origLines, inflLines)
	}
}

func TestInjectLinesNoDecoys(t *testing.T) {
	data := []byte("a\nb\n")
	out, inj, err := InjectLines(data, nil, nil)
	if err != nil || inj.Count() != 0 || !bytes.Equal(out, data) {
		t.Fatalf("out=%q inj=%d err=%v", out, inj.Count(), err)
	}
}

func TestOverhead(t *testing.T) {
	if Overhead(0, Injection{}) != 0 {
		t.Fatal("zero-length overhead should be 0")
	}
	if got := Overhead(100, Injection{Positions: make([]int, 25)}); got != 0.25 {
		t.Fatalf("overhead = %v, want 0.25", got)
	}
}

// Property: Inject→Strip is the identity for arbitrary payloads/fractions.
func TestInjectStripRoundTripProperty(t *testing.T) {
	f := func(data []byte, fracSeed uint8, seed int64) bool {
		frac := float64(fracSeed%101) / 100.0
		rng := rand.New(rand.NewSource(seed))
		inflated, inj, err := Inject(data, frac, rng)
		if err != nil {
			return false
		}
		if inj.Validate(len(inflated)) != nil {
			return false
		}
		got, err := Strip(inflated, inj)
		if err != nil {
			return false
		}
		if data == nil {
			return len(got) == 0
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: InjectLines→Strip is the identity.
func TestInjectLinesRoundTripProperty(t *testing.T) {
	f := func(nLines uint8, nDecoys uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var data []byte
		for i := 0; i < int(nLines%20)+1; i++ {
			data = append(data, []byte("row,value\n")...)
		}
		var decoys [][]byte
		for i := 0; i < int(nDecoys%5); i++ {
			decoys = append(decoys, []byte("decoy,row"))
		}
		inflated, inj, err := InjectLines(data, decoys, rng)
		if err != nil {
			return false
		}
		got, err := Strip(inflated, inj)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
