package mislead

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzInjectStrip fuzzes decoy injection/removal.
func FuzzInjectStrip(f *testing.F) {
	f.Add([]byte("payload"), 0.3, int64(1))
	f.Add([]byte{}, 0.9, int64(2))
	f.Fuzz(func(t *testing.T, data []byte, frac float64, seed int64) {
		if frac < 0 || frac > 1 {
			return
		}
		inflated, inj, err := Inject(data, frac, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("inject: %v", err)
		}
		got, err := Strip(inflated, inj)
		if err != nil {
			t.Fatalf("strip: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzStripHostile feeds Strip arbitrary injections: it must never panic.
func FuzzStripHostile(f *testing.F) {
	f.Add([]byte("abc"), 0, 1)
	f.Add([]byte{}, 5, -3)
	f.Fuzz(func(t *testing.T, data []byte, p1, p2 int) {
		_, _ = Strip(data, Injection{Positions: []int{p1, p2}})
	})
}
