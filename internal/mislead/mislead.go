// Package mislead implements the paper's misleading-data mechanism: "the
// Cloud Data Distributor may add misleading data into chunks depending on
// the demand of clients. The positions of misleading data bytes are also
// maintained by the distributor and these misleading bytes are removed
// while providing the chunks to the clients." (§IV-A, §VII-D)
//
// Injection is deterministic given a seed, so the distributor only needs
// to persist the positions (as the paper's Chunk Table does); Strip
// inverts Inject exactly.
package mislead

import (
	"fmt"
	"math/rand"
	"sort"
)

// Injection describes misleading bytes added to one chunk: Positions are
// indices into the *inflated* payload that hold decoy bytes. This is the
// "M" column of the paper's Chunk Table.
type Injection struct {
	Positions []int
}

// Count returns the number of injected bytes.
func (inj Injection) Count() int { return len(inj.Positions) }

// Validate checks positions are sorted, unique, non-negative and within
// the inflated length.
func (inj Injection) Validate(inflatedLen int) error {
	prev := -1
	for _, p := range inj.Positions {
		if p < 0 || p >= inflatedLen {
			return fmt.Errorf("mislead: position %d outside inflated payload of %d bytes", p, inflatedLen)
		}
		if p <= prev {
			return fmt.Errorf("mislead: positions not strictly increasing at %d", p)
		}
		prev = p
	}
	return nil
}

// Inject inserts decoy bytes into data so that the decoy content blends in
// statistically (bytes are sampled from the payload's own distribution,
// making the decoys hard to filter before mining). fraction ∈ [0, 1] is
// the ratio of decoy bytes to original bytes. The returned Injection
// records the decoy positions in the inflated payload.
func Inject(data []byte, fraction float64, rng *rand.Rand) ([]byte, Injection, error) {
	if fraction < 0 || fraction > 1 {
		return nil, Injection{}, fmt.Errorf("mislead: fraction %v outside [0,1]", fraction)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	nDecoys := int(float64(len(data)) * fraction)
	if nDecoys == 0 {
		out := make([]byte, len(data))
		copy(out, data)
		return out, Injection{}, nil
	}
	inflatedLen := len(data) + nDecoys
	// Choose decoy positions uniformly in the inflated payload.
	positions := pickPositions(inflatedLen, nDecoys, rng)
	isDecoy := make([]bool, inflatedLen)
	for _, p := range positions {
		isDecoy[p] = true
	}
	out := make([]byte, inflatedLen)
	src := 0
	for i := range out {
		if isDecoy[i] {
			out[i] = decoyByte(data, rng)
		} else {
			out[i] = data[src]
			src++
		}
	}
	return out, Injection{Positions: positions}, nil
}

// pickPositions samples n distinct positions in [0, total) and returns
// them sorted.
func pickPositions(total, n int, rng *rand.Rand) []int {
	perm := rng.Perm(total)[:n]
	sort.Ints(perm)
	return perm
}

// decoyByte samples a byte from the payload's own empirical distribution
// (or uniformly if the payload is empty).
func decoyByte(data []byte, rng *rand.Rand) byte {
	if len(data) == 0 {
		return byte(rng.Intn(256))
	}
	return data[rng.Intn(len(data))]
}

// Strip removes the injected bytes, recovering the original payload.
// The returned slice has exact capacity — it retains nothing beyond the
// recovered bytes.
func Strip(inflated []byte, inj Injection) ([]byte, error) {
	if err := inj.Validate(len(inflated)); err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(inflated)-len(inj.Positions))
	return StripTo(out, inflated, inj)
}

// StripTo is Strip appending into dst — typically a zero-length slice of
// a caller-owned buffer (e.g. one segment of a preallocated whole-file
// buffer), so bulk reads recover chunks in place without intermediate
// allocations. Returns the extended slice; if dst lacks capacity the
// usual append reallocation applies.
//
// Positions are strictly increasing (Validate enforces it), so the kept
// bytes are the gaps between consecutive decoys: copy each gap with one
// bulk append instead of testing every byte against a position set.
func StripTo(dst, inflated []byte, inj Injection) ([]byte, error) {
	if err := inj.Validate(len(inflated)); err != nil {
		return nil, err
	}
	prev := 0
	for _, p := range inj.Positions {
		dst = append(dst, inflated[prev:p]...)
		prev = p + 1
	}
	return append(dst, inflated[prev:]...), nil
}

// InjectLines inserts whole misleading records (lines) into line-oriented
// data such as the CSV files the evaluation uses — this is what actually
// corrupts a mining run, since a mining attacker parses records, not
// bytes. decoys are full fabricated lines; the returned Injection records
// the byte positions of the inserted regions so Strip still inverts it.
func InjectLines(data []byte, decoyLines [][]byte, rng *rand.Rand) ([]byte, Injection, error) {
	if rng == nil {
		rng = rand.New(rand.NewSource(2))
	}
	if len(decoyLines) == 0 {
		out := make([]byte, len(data))
		copy(out, data)
		return out, Injection{}, nil
	}
	// Find line-start offsets in the original data.
	starts := []int{0}
	for i, b := range data {
		if b == '\n' && i+1 < len(data) {
			starts = append(starts, i+1)
		}
	}
	// Choose an insertion line-start for each decoy.
	insertAt := make([]int, len(decoyLines))
	for i := range insertAt {
		insertAt[i] = starts[rng.Intn(len(starts))]
	}
	sort.Ints(insertAt)

	var out []byte
	var positions []int
	di := 0
	for off := 0; off <= len(data); off++ {
		for di < len(insertAt) && insertAt[di] == off {
			line := decoyLines[di]
			for _, b := range line {
				positions = append(positions, len(out))
				out = append(out, b)
			}
			if len(line) == 0 || line[len(line)-1] != '\n' {
				positions = append(positions, len(out))
				out = append(out, '\n')
			}
			di++
		}
		if off < len(data) {
			out = append(out, data[off])
		}
	}
	return out, Injection{Positions: positions}, nil
}

// Overhead reports the storage overhead ratio of an injection relative to
// the original size (0.25 means 25% extra bytes).
func Overhead(originalLen int, inj Injection) float64 {
	if originalLen == 0 {
		return 0
	}
	return float64(inj.Count()) / float64(originalLen)
}
