// Package privcloud is the public face of this repository: a from-scratch
// Go implementation of the distributed cloud-storage architecture of
// Dev, Sen, Basak and Ali, "An Approach to Protect the Privacy of Cloud
// Data from Data Mining Based Attacks" (2012).
//
// The system defends client data against data-mining attacks by
// categorizing files into privacy levels, fragmenting them into
// level-sized chunks, and distributing the chunks across multiple cloud
// providers under a reputation- and cost-aware placement policy, with
// RAID-5/6 parity for availability, virtual chunk ids for unlinkability,
// optional misleading decoy bytes, and ⟨password, privacy-level⟩ access
// control.
//
// Quick start:
//
//	sys, err := privcloud.NewSystem(privcloud.SystemConfig{
//		Providers: []privcloud.ProviderSpec{
//			{Name: "alpha", Privacy: privcloud.High, Cost: 2},
//			{Name: "beta", Privacy: privcloud.High, Cost: 1},
//			{Name: "gamma", Privacy: privcloud.Moderate, Cost: 0},
//			{Name: "delta", Privacy: privcloud.Low, Cost: 0},
//			{Name: "epsilon", Privacy: privcloud.High, Cost: 3},
//		},
//	})
//	_ = sys.RegisterClient("acme")
//	_ = sys.AddPassword("acme", "s3cret", privcloud.High)
//	info, _ := sys.Upload("acme", "s3cret", "ledger.csv", data, privcloud.High, privcloud.UploadOptions{})
//	back, _ := sys.GetFile("acme", "s3cret", "ledger.csv")
//
// The internal packages implement every substrate the paper's evaluation
// needs — simulated S3-like providers, an HTTP transport, the attacker's
// mining toolkit (regression, hierarchical clustering, k-means, Apriori,
// k-NN), workload generators, an encryption baseline, a Chord-style
// client-side variant, and availability/cost models. See DESIGN.md for
// the system inventory and EXPERIMENTS.md for the paper-vs-measured
// record.
package privcloud

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/raid"
)

// PrivacyLevel is a file's mining-sensitivity category (the paper's
// PL 0–3).
type PrivacyLevel = privacy.Level

// The paper's four suggested privacy levels.
const (
	Public   = privacy.Public
	Low      = privacy.Low
	Moderate = privacy.Moderate
	High     = privacy.High
)

// RaidLevel selects a stripe's redundancy.
type RaidLevel = raid.Level

// Supported redundancy levels.
const (
	RaidNone = raid.None
	Raid5    = raid.RAID5
	Raid6    = raid.RAID6
)

// UploadOptions re-exports the distributor's per-upload knobs.
type UploadOptions = core.UploadOptions

// FileInfo re-exports the distributor's upload report.
type FileInfo = core.FileInfo

// Stats re-exports distributor placement statistics.
type Stats = core.Stats

// Distributor-visible error values, re-exported so callers can errors.Is
// against them without importing internal packages.
var (
	ErrAuth        = core.ErrAuth
	ErrNoSuchFile  = core.ErrNoSuchFile
	ErrNoSuchChunk = core.ErrNoSuchChunk
	ErrExists      = core.ErrExists
	ErrPlacement   = core.ErrPlacement
	ErrUnavailable = core.ErrUnavailable
	ErrNoSnapshot  = core.ErrNoSnapshot
	ErrConfig      = core.ErrConfig
	ErrCircuitOpen = core.ErrCircuitOpen
	ErrRange       = core.ErrRange
	ErrConflict    = core.ErrConflict
)

// ProviderSpec declares one simulated cloud provider.
type ProviderSpec struct {
	Name string
	// Privacy is the provider's reputation level: chunks of level L may
	// only be placed on providers with Privacy ≥ L.
	Privacy PrivacyLevel
	// Cost is the provider's cost level 0–3 (higher = pricier $/GB-month).
	Cost int
	// FailureRate, if non-zero, injects transient faults with this
	// probability per operation.
	FailureRate float64
}

// SystemConfig assembles an in-process System.
type SystemConfig struct {
	Providers []ProviderSpec
	// DefaultRaid is the assurance used when uploads don't choose one;
	// zero selects RAID-5 (the paper's default).
	DefaultRaid RaidLevel
	// StripeWidth caps data shards per stripe (default 4).
	StripeWidth int
	// Secret keys the virtual-id PRF; fix it for reproducible ids.
	Secret []byte
	// MisleadSeed makes decoy injection reproducible.
	MisleadSeed int64
	// StreamWindow bounds how many stripes a streaming transfer
	// (UploadFrom / GetFileTo) holds in flight; zero selects the
	// distributor default (4).
	StreamWindow int
}

// System bundles a distributor with its provider fleet — the whole paper
// architecture in one process.
type System struct {
	dist  *core.Distributor
	fleet *provider.Fleet
}

// NewSystem builds the fleet and distributor from a config.
func NewSystem(cfg SystemConfig) (*System, error) {
	if len(cfg.Providers) == 0 {
		return nil, fmt.Errorf("%w: no providers", ErrConfig)
	}
	fleet, err := provider.NewFleet()
	if err != nil {
		return nil, err
	}
	for _, spec := range cfg.Providers {
		p, err := provider.New(provider.Info{
			Name: spec.Name,
			PL:   spec.Privacy,
			CL:   privacy.CostLevel(spec.Cost),
		}, provider.Options{FailureRate: spec.FailureRate})
		if err != nil {
			return nil, err
		}
		if err := fleet.Add(p); err != nil {
			return nil, err
		}
	}
	dist, err := core.New(core.Config{
		Fleet:        fleet,
		DefaultRaid:  cfg.DefaultRaid,
		StripeWidth:  cfg.StripeWidth,
		Secret:       cfg.Secret,
		MisleadSeed:  cfg.MisleadSeed,
		StreamWindow: cfg.StreamWindow,
	})
	if err != nil {
		return nil, err
	}
	return &System{dist: dist, fleet: fleet}, nil
}

// RegisterClient creates a client account.
func (s *System) RegisterClient(name string) error { return s.dist.RegisterClient(name) }

// AddPassword associates a ⟨password, PL⟩ pair with a client.
func (s *System) AddPassword(client, password string, pl PrivacyLevel) error {
	return s.dist.AddPassword(client, password, pl)
}

// Upload categorizes, fragments and distributes a file.
func (s *System) Upload(client, password, filename string, data []byte, pl PrivacyLevel, opts UploadOptions) (FileInfo, error) {
	return s.dist.Upload(client, password, filename, data, pl, opts)
}

// UploadFrom is Upload behind an io.Reader: the file is chunked,
// striped and shipped as bytes arrive, holding at most
// SystemConfig.StreamWindow stripes in memory — the entry point for
// objects too large to materialize.
func (s *System) UploadFrom(client, password, filename string, r io.Reader, pl PrivacyLevel, opts UploadOptions) (FileInfo, error) {
	return s.dist.UploadStream(client, password, filename, r, pl, opts)
}

// GetFile retrieves and reassembles a file.
func (s *System) GetFile(client, password, filename string) ([]byte, error) {
	return s.dist.GetFile(client, password, filename)
}

// GetFileTo streams a whole file into w in order with bounded lookahead,
// never buffering more than the stream window. It returns the bytes
// written; on error the count reports the delivered prefix.
func (s *System) GetFileTo(w io.Writer, client, password, filename string) (int64, error) {
	return s.dist.GetFileTo(w, client, password, filename)
}

// GetChunk retrieves one chunk by serial number.
func (s *System) GetChunk(client, password, filename string, serial int) ([]byte, error) {
	return s.dist.GetChunk(client, password, filename, serial)
}

// GetSnapshot retrieves a chunk's pre-modification state.
func (s *System) GetSnapshot(client, password, filename string, serial int) ([]byte, error) {
	return s.dist.GetSnapshot(client, password, filename, serial)
}

// UpdateChunk replaces one chunk, snapshotting the previous state.
func (s *System) UpdateChunk(client, password, filename string, serial int, data []byte) error {
	return s.dist.UpdateChunk(client, password, filename, serial, data, UploadOptions{})
}

// RemoveChunk deletes one chunk.
func (s *System) RemoveChunk(client, password, filename string, serial int) error {
	return s.dist.RemoveChunk(client, password, filename, serial)
}

// RemoveFile deletes a file and all of its shards.
func (s *System) RemoveFile(client, password, filename string) error {
	return s.dist.RemoveFile(client, password, filename)
}

// GetRange retrieves an arbitrary byte range, touching only the chunks
// that overlap it.
func (s *System) GetRange(client, password, filename string, offset, length int) ([]byte, error) {
	return s.dist.GetRange(client, password, filename, offset, length)
}

// Scrub verifies every stored chunk and repairs corrupted or missing
// shards from mirrors or RAID parity.
func (s *System) Scrub() (core.ScrubReport, error) { return s.dist.Scrub() }

// AuditOrphans finds (and with gc=true removes) provider-resident objects
// the distributor's tables no longer reference.
func (s *System) AuditOrphans(gc bool) (core.AuditReport, error) { return s.dist.AuditOrphans(gc) }

// ChunkCount reports a file's chunk count.
func (s *System) ChunkCount(client, password, filename string) (int, error) {
	return s.dist.ChunkCount(client, password, filename)
}

// Stats returns placement statistics.
func (s *System) Stats() Stats { return s.dist.Stats() }

// Metrics returns the distributor's operation counters (reads, recovery
// events, retries).
func (s *System) Metrics() core.OpMetrics { return s.dist.Metrics() }

// Health reports each provider's circuit-breaker state and accumulated
// success/failure counts, as observed by the distributor's own
// operations.
func (s *System) Health() []core.ProviderHealth { return s.dist.Health() }

// Distributor exposes the underlying distributor for advanced use
// (tables, metadata replication, HTTP serving).
func (s *System) Distributor() *core.Distributor { return s.dist }

// Fleet exposes the provider fleet for failure injection, billing and
// attack simulation.
func (s *System) Fleet() *provider.Fleet { return s.fleet }

// SetProviderOutage toggles an outage on the named provider.
func (s *System) SetProviderOutage(name string, down bool) error {
	p, _, err := s.fleet.ByName(name)
	if err != nil {
		return err
	}
	p.SetOutage(down)
	return nil
}

// DecommissionProvider evacuates every shard from the named provider onto
// the rest of the fleet (the "provider going out of business" path) and
// marks it down so no new placement selects it.
func (s *System) DecommissionProvider(name string) (core.DecommissionReport, error) {
	p, idx, err := s.fleet.ByName(name)
	if err != nil {
		return core.DecommissionReport{}, err
	}
	rep, err := s.dist.Decommission(idx)
	if err != nil {
		return rep, err
	}
	p.SetOutage(true)
	return rep, nil
}
