package privcloud_test

import (
	"bytes"
	"fmt"
	"log"

	privcloud "repro"
)

func newExampleSystem() *privcloud.System {
	sys, err := privcloud.NewSystem(privcloud.SystemConfig{
		Providers: []privcloud.ProviderSpec{
			{Name: "alpha", Privacy: privcloud.High, Cost: 2},
			{Name: "beta", Privacy: privcloud.High, Cost: 1},
			{Name: "gamma", Privacy: privcloud.High, Cost: 0},
			{Name: "delta", Privacy: privcloud.Moderate, Cost: 0},
			{Name: "echo", Privacy: privcloud.High, Cost: 3},
			{Name: "zeta", Privacy: privcloud.Low, Cost: 0},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.RegisterClient("acme"); err != nil {
		log.Fatal(err)
	}
	if err := sys.AddPassword("acme", "admin", privcloud.High); err != nil {
		log.Fatal(err)
	}
	return sys
}

// Example shows the end-to-end workflow: categorize, fragment, distribute,
// retrieve.
func Example() {
	sys := newExampleSystem()
	data := bytes.Repeat([]byte("confidential-record;"), 1000)
	info, err := sys.Upload("acme", "admin", "ledger.csv", data, privcloud.High, privcloud.UploadOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chunks: %d, assurance: %v\n", info.Chunks, info.Raid)

	back, err := sys.GetFile("acme", "admin", "ledger.csv")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("intact: %v\n", bytes.Equal(back, data))
	// Output:
	// chunks: 3, assurance: raid5
	// intact: true
}

// ExampleSystem_SetProviderOutage shows RAID-5 masking a provider outage.
func ExampleSystem_SetProviderOutage() {
	sys := newExampleSystem()
	data := bytes.Repeat([]byte("x"), 40_000)
	if _, err := sys.Upload("acme", "admin", "f", data, privcloud.Moderate, privcloud.UploadOptions{}); err != nil {
		log.Fatal(err)
	}
	if err := sys.SetProviderOutage("alpha", true); err != nil {
		log.Fatal(err)
	}
	back, err := sys.GetFile("acme", "admin", "f")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("readable during outage: %v\n", bytes.Equal(back, data))
	// Output:
	// readable during outage: true
}

// ExampleSystem_GetFile_accessControl shows the paper's ⟨password, PL⟩
// denial case.
func ExampleSystem_GetFile_accessControl() {
	sys := newExampleSystem()
	if err := sys.AddPassword("acme", "guest", privcloud.Public); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Upload("acme", "admin", "secret", []byte("classified"), privcloud.High, privcloud.UploadOptions{}); err != nil {
		log.Fatal(err)
	}
	_, err := sys.GetFile("acme", "guest", "secret")
	fmt.Printf("guest denied: %v\n", err != nil)
	_, err = sys.GetFile("acme", "admin", "secret")
	fmt.Printf("admin served: %v\n", err == nil)
	// Output:
	// guest denied: true
	// admin served: true
}

// ExampleSystem_GetRange shows the fragmented point query of §VII-E.
func ExampleSystem_GetRange() {
	sys := newExampleSystem()
	data := make([]byte, 100_000)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := sys.Upload("acme", "admin", "blob", data, privcloud.Moderate, privcloud.UploadOptions{}); err != nil {
		log.Fatal(err)
	}
	slice, err := sys.GetRange("acme", "admin", "blob", 50_000, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bytes at 50000: %v\n", slice)
	// Output:
	// bytes at 50000: [80 81 82 83]
}
