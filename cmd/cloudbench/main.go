// Command cloudbench is a warp-class load generator for the privcloud
// distributor: it drives a real networked distributor+provider fleet
// with a mixed put/get/range/update/remove workload (plus sput/sget,
// the windowed streaming upload/download pair) — configurable op
// ratios, worker concurrency, object-size distribution, multi-tenant
// client/key spaces — for a fixed duration with warmup exclusion, and
// reports p50/p90/p99/p99.9 latency per op plus a throughput timeline
// as JSON (internal/loadreport) that cmd/benchjson merges into the
// BENCH_N.json trajectory.
//
// Usage:
//
//	cloudbench -local-providers 6 -workers 16 -duration 30s -out load.json
//	cloudbench -url http://localhost:9000 -mix put=10,get=70,range=20
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/loadreport"
	"repro/internal/privacy"
	"repro/internal/transport"
)

type config struct {
	url         string
	localN      int
	dists       int
	provLatency time.Duration
	cacheBytes  int64
	hedgeAfter  time.Duration
	streamW     int
	workers     int
	duration    time.Duration
	warmup      time.Duration
	mix         string
	sizes       string
	tenants     int
	keys        int
	pl          int
	seed        int64
	interval    time.Duration
	out         string
	strict      bool

	urlResolved string    // actual base URL driven (filled by run)
	summary     io.Writer // human digest sink; nil = discard
}

func parseConfig(args []string) (config, error) {
	var cfg config
	fs := flag.NewFlagSet("cloudbench", flag.ContinueOnError)
	fs.StringVar(&cfg.url, "url", "", "distributor base URL, or comma-separated shard URLs (empty = start an in-process fleet)")
	fs.IntVar(&cfg.localN, "local-providers", 6, "provider count per distributor for the in-process fleet")
	fs.IntVar(&cfg.dists, "distributors", 1, "in-process distributor (shard) count; >1 drives a consistent-hash sharded namespace")
	fs.DurationVar(&cfg.provLatency, "provider-latency", 0, "simulated per-op latency of in-process providers")
	fs.Int64Var(&cfg.cacheBytes, "cache-bytes", 0, "in-process distributor chunk-cache bound (0 disables)")
	fs.DurationVar(&cfg.hedgeAfter, "hedge-after", 50*time.Millisecond, "in-process distributor hedge delay (0 disables)")
	fs.IntVar(&cfg.streamW, "stream-window", 0, "in-process distributor streaming window in stripes (0 = default 4)")
	fs.IntVar(&cfg.workers, "workers", 16, "concurrent load workers")
	fs.DurationVar(&cfg.duration, "duration", 30*time.Second, "total run length, warmup included")
	fs.DurationVar(&cfg.warmup, "warmup", 5*time.Second, "initial window excluded from latency stats")
	fs.StringVar(&cfg.mix, "mix", "put=10,get=60,range=15,update=10,remove=5", "op weights")
	fs.StringVar(&cfg.sizes, "sizes", "4KiB=60,64KiB=30,256KiB=10", "object-size weights (B/KiB/MiB/GiB)")
	fs.IntVar(&cfg.tenants, "tenants", 4, "client accounts sharing the fleet")
	fs.IntVar(&cfg.keys, "keys", 32, "preloaded objects per tenant")
	fs.IntVar(&cfg.pl, "pl", int(privacy.Moderate), "privacy level of benchmark objects")
	fs.Int64Var(&cfg.seed, "seed", 1, "workload RNG seed")
	fs.DurationVar(&cfg.interval, "interval", time.Second, "throughput timeline resolution")
	fs.StringVar(&cfg.out, "out", "-", "JSON report path ('-' = stdout)")
	fs.BoolVar(&cfg.strict, "strict", false, "exit nonzero if any op fails")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	switch {
	case cfg.workers < 1 || cfg.tenants < 1 || cfg.keys < 1:
		return cfg, fmt.Errorf("workers, tenants and keys must be >= 1")
	case cfg.warmup >= cfg.duration:
		return cfg, fmt.Errorf("warmup %v must be shorter than duration %v", cfg.warmup, cfg.duration)
	case cfg.interval <= 0:
		return cfg, fmt.Errorf("interval must be positive")
	case !privacy.Level(cfg.pl).Valid():
		return cfg, fmt.Errorf("pl %d out of range", cfg.pl)
	case cfg.url == "" && cfg.localN < 1:
		return cfg, fmt.Errorf("need -url or -local-providers >= 1")
	case cfg.dists < 1:
		return cfg, fmt.Errorf("distributors must be >= 1")
	case cfg.url != "" && cfg.dists > 1:
		return cfg, fmt.Errorf("-distributors shapes the in-process fleet; pass comma-separated shard URLs in -url instead")
	}
	return cfg, nil
}

func main() {
	cfg, err := parseConfig(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	cfg.summary = os.Stderr
	rep, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cloudbench:", err)
		os.Exit(1)
	}
	if err := writeReport(rep, cfg.out); err != nil {
		fmt.Fprintln(os.Stderr, "cloudbench:", err)
		os.Exit(1)
	}
	if cfg.strict && rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "cloudbench: strict mode: %d op errors\n", rep.Errors)
		os.Exit(1)
	}
}

// run executes one full benchmark: fleet (if local), preload, timed
// mixed load, report assembly.
func run(cfg config) (*loadreport.Report, error) {
	if cfg.dists < 1 {
		cfg.dists = 1 // zero value (hand-built configs) means unsharded
	}
	mix, err := parseMix(cfg.mix)
	if err != nil {
		return nil, err
	}
	sizes, err := parseSizes(cfg.sizes)
	if err != nil {
		return nil, err
	}

	// The driver http.Client shares one pooled transport across every
	// shard, sized so fan-out beyond 2 conns/host never re-dials.
	hc := &http.Client{Timeout: 2 * time.Minute, Transport: transport.NewPooledTransport()}

	var (
		client transport.API
		target string
	)
	switch {
	case cfg.url == "" && cfg.dists == 1:
		url, shutdown, err := startLocalFleet(cfg.localN, cfg.provLatency, cfg.cacheBytes, cfg.hedgeAfter, cfg.streamW)
		if err != nil {
			return nil, fmt.Errorf("starting fleet: %w", err)
		}
		defer shutdown()
		target = fmt.Sprintf("in-process fleet (%d providers) at %s", cfg.localN, url)
		cfg.urlResolved = url
		client = transport.NewClient(url, hc)
	case cfg.url == "": // sharded in-process fleet
		urls, shutdown, err := startLocalShards(cfg.dists, cfg.localN, cfg.provLatency, cfg.cacheBytes, cfg.hedgeAfter, cfg.streamW)
		if err != nil {
			return nil, fmt.Errorf("starting sharded fleet: %w", err)
		}
		defer shutdown()
		target = fmt.Sprintf("in-process sharded fleet (%d distributors × %d providers)", cfg.dists, cfg.localN)
		cfg.urlResolved = urls[0]
		sys, err := transport.NewSystem(urls, hc)
		if err != nil {
			return nil, err
		}
		client = sys
	case strings.Contains(cfg.url, ","): // external sharded deployment
		var urls []string
		for _, u := range strings.Split(cfg.url, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		sys, err := transport.NewSystem(urls, hc)
		if err != nil {
			return nil, err
		}
		cfg.dists = len(urls)
		cfg.urlResolved = urls[0]
		target = fmt.Sprintf("sharded deployment (%d distributors)", len(urls))
		client = sys
	default:
		cfg.urlResolved = cfg.url
		target = cfg.url
		client = transport.NewClient(cfg.url, hc)
	}
	if err := client.Health(); err != nil {
		return nil, fmt.Errorf("distributor unreachable: %w", err)
	}

	tenants := make([]*tenant, cfg.tenants)
	for i := range tenants {
		tenants[i] = &tenant{
			name:     fmt.Sprintf("tenant%02d", i),
			password: fmt.Sprintf("pw-%02d", i),
			floor:    max(1, cfg.keys/2),
		}
	}
	if err := preload(cfg, client, tenants, sizes); err != nil {
		return nil, err
	}

	pl := privacy.Level(cfg.pl)
	workers := make([]*worker, cfg.workers)
	for i := range workers {
		workers[i] = newWorker(cfg.seed+int64(i)*7919, client, tenants, mix, sizes, pl)
	}

	start := time.Now()
	tl := newTimeline(start, cfg.duration, cfg.interval)
	deadline := start.Add(cfg.duration)
	warmEnd := start.Add(cfg.warmup)
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.loop(deadline, warmEnd, tl)
		}(w)
	}
	wg.Wait()

	rep := buildReport(cfg, target, workers, tl, cfg.duration-cfg.warmup)
	if cfg.summary != nil {
		printSummary(cfg.summary, rep, workers)
	}
	return rep, nil
}

// preload registers the tenants and uploads each namespace's initial
// objects in parallel; any failure aborts the run before the clock
// starts.
func preload(cfg config, client transport.API, tenants []*tenant, sizes sizeDist) error {
	for _, tn := range tenants {
		if err := client.RegisterClient(tn.name); err != nil {
			return fmt.Errorf("register %s: %w", tn.name, err)
		}
		if err := client.AddPassword(tn.name, tn.password, privacy.High); err != nil {
			return fmt.Errorf("password %s: %w", tn.name, err)
		}
	}
	pl := privacy.Level(cfg.pl)
	jobCh := make(chan *tenant)
	errCh := make(chan error, 1)
	var wg sync.WaitGroup
	for i := 0; i < cfg.workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed ^ int64(0x9e3779b9*uint32(id+1))))
			for tn := range jobCh {
				obj := tn.fresh(sizes.pick(rng))
				data := make([]byte, obj.size)
				rng.Read(data)
				if _, err := client.Upload(tn.name, tn.password, obj.name, data, pl, transport.UploadOptions{}); err != nil {
					select {
					case errCh <- fmt.Errorf("preload %s/%s: %w", tn.name, obj.name, err):
					default:
					}
					continue
				}
				tn.release(obj)
			}
		}(i)
	}
	for _, tn := range tenants {
		for k := 0; k < cfg.keys; k++ {
			jobCh <- tn
		}
	}
	close(jobCh)
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}
