package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/loadreport"
	"repro/internal/metrics"
)

// timeline accumulates whole-run throughput per fixed interval. Workers
// hit it on every op completion, so the buckets are lock-free atomics.
type timeline struct {
	start    time.Time
	interval time.Duration
	buckets  []tlBucket
}

type tlBucket struct {
	ops   atomic.Int64
	errs  atomic.Int64
	bytes atomic.Int64
}

func newTimeline(start time.Time, total, interval time.Duration) *timeline {
	n := int(total/interval) + 2 // +slack for ops finishing past the deadline
	return &timeline{start: start, interval: interval, buckets: make([]tlBucket, n)}
}

func (t *timeline) record(at time.Time, n int64, failed bool) {
	i := int(at.Sub(t.start) / t.interval)
	if i < 0 {
		i = 0
	}
	if i >= len(t.buckets) {
		i = len(t.buckets) - 1
	}
	b := &t.buckets[i]
	b.ops.Add(1)
	b.bytes.Add(n)
	if failed {
		b.errs.Add(1)
	}
}

// points renders the series, trimming trailing empty buckets.
func (t *timeline) points() []loadreport.TimelinePoint {
	last := -1
	for i := range t.buckets {
		if t.buckets[i].ops.Load() > 0 {
			last = i
		}
	}
	sec := t.interval.Seconds()
	pts := make([]loadreport.TimelinePoint, 0, last+1)
	for i := 0; i <= last; i++ {
		b := &t.buckets[i]
		pts = append(pts, loadreport.TimelinePoint{
			TSec:    float64(i) * sec,
			OpsPerS: round3(float64(b.ops.Load()) / sec),
			MBPerS:  round3(float64(b.bytes.Load()) / sec / (1 << 20)),
			Errors:  b.errs.Load(),
		})
	}
	return pts
}

func ms(ns int64) float64      { return round3(float64(ns) / 1e6) }
func round3(x float64) float64 { return float64(int64(x*1000+0.5)) / 1000 }

// buildReport merges the per-worker recorders into the emitted document.
func buildReport(cfg config, target string, workers []*worker, tl *timeline, measured time.Duration) *loadreport.Report {
	rep := &loadreport.Report{
		Schema: loadreport.Schema,
		Target: target,
		Config: loadreport.Config{
			Workers: cfg.workers, Tenants: cfg.tenants, Keys: cfg.keys,
			Mix: cfg.mix, Sizes: cfg.sizes,
			Duration: cfg.duration.String(), Warmup: cfg.warmup.String(),
			Seed: cfg.seed,
		},
		Ops:      map[string]loadreport.Op{},
		Timeline: tl.points(),
	}
	if cfg.url == "" {
		rep.Config.Providers = cfg.localN
	}
	if cfg.dists > 1 {
		rep.Config.Distributors = cfg.dists
	}

	sec := measured.Seconds()
	totalHist := metrics.NewHistogram()
	var total loadreport.Op
	for op := opKind(0); op < opCount; op++ {
		hist := metrics.NewHistogram()
		var count, errs, bytes int64
		for _, w := range workers {
			r := w.recs[op]
			hist.Merge(r.hist)
			count += r.count
			errs += r.errs
			bytes += r.bytes
		}
		if count == 0 {
			continue
		}
		rep.Ops[opNames[op]] = opSummary(hist, count, errs, bytes, sec)
		totalHist.Merge(hist)
		total.Count += count
		total.Errors += errs
		total.Bytes += bytes
	}
	rep.Total = opSummary(totalHist, total.Count, total.Errors, total.Bytes, sec)
	rep.Errors = total.Errors
	return rep
}

func opSummary(h *metrics.Histogram, count, errs, bytes int64, sec float64) loadreport.Op {
	s := h.Snapshot()
	op := loadreport.Op{
		Count: count, Errors: errs, Bytes: bytes,
		P50ms: ms(s.P50), P90ms: ms(s.P90), P99ms: ms(s.P99),
		P999ms: ms(s.P999), MaxMs: ms(s.Max), MeanMs: round3(s.Mean / 1e6),
	}
	if sec > 0 {
		op.OpsPerS = round3(float64(count) / sec)
		op.MBPerS = round3(float64(bytes) / sec / (1 << 20))
	}
	return op
}

// writeReport emits the JSON document to path ("" or "-" = stdout).
func writeReport(rep *loadreport.Report, path string) error {
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if path == "" || path == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	if path == os.DevNull {
		return nil
	}
	return os.WriteFile(path, enc, 0o644)
}

// printSummary writes the human-readable digest (stderr, so a piped
// stdout stays pure JSON).
func printSummary(w io.Writer, rep *loadreport.Report, workers []*worker) {
	fmt.Fprintf(w, "cloudbench: %s · %d workers · mix %s\n", rep.Target, rep.Config.Workers, rep.Config.Mix)
	for op := opKind(0); op < opCount; op++ {
		o, ok := rep.Ops[opNames[op]]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  %-7s %7d ops %4d err  p50 %8.2fms  p99 %8.2fms  p99.9 %8.2fms  %8.1f ops/s %8.2f MB/s\n",
			opNames[op], o.Count, o.Errors, o.P50ms, o.P99ms, o.P999ms, o.OpsPerS, o.MBPerS)
	}
	o := rep.Total
	fmt.Fprintf(w, "  %-7s %7d ops %4d err  p50 %8.2fms  p99 %8.2fms  p99.9 %8.2fms  %8.1f ops/s %8.2f MB/s\n",
		"total", o.Count, o.Errors, o.P50ms, o.P99ms, o.P999ms, o.OpsPerS, o.MBPerS)
	for op := opKind(0); op < opCount; op++ {
		for _, wk := range workers {
			if err := wk.recs[op].firstErr; err != nil {
				fmt.Fprintf(w, "  first %s error: %v\n", opNames[op], err)
				break
			}
		}
	}
}
