package main

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/transport"
)

// startLocalFleet stands up n provider HTTP servers and one distributor
// HTTP server on loopback — real sockets, real transport, same wire path
// as a multi-host deployment — and returns the distributor's base URL
// plus a shutdown function. The distributor reaches its providers
// through RemoteProvider clients, so the measured stack is the full
// networked architecture, not an in-process shortcut.
func startLocalFleet(n int, provLatency time.Duration, cacheBytes int64, hedgeAfter time.Duration, streamWindow int) (string, func(), error) {
	urls, shutdown, err := startLocalShards(1, n, provLatency, cacheBytes, hedgeAfter, streamWindow)
	if err != nil {
		return "", nil, err
	}
	return urls[0], shutdown, nil
}

// startLocalShards stands up d independent distributors, each over its
// own fleet of n loopback provider servers — the local form of the
// sharded deployment the scaling curve measures. Each shard owns its
// providers outright (no shared fleet), so throughput scales with
// shard count exactly as it would across machines.
func startLocalShards(d, n int, provLatency time.Duration, cacheBytes int64, hedgeAfter time.Duration, streamWindow int) ([]string, func(), error) {
	var servers []*http.Server
	shutdown := func() {
		for _, s := range servers {
			_ = s.Close()
		}
	}
	// One pooled transport for all distributor→provider connections; the
	// default transport's 2 idle conns per host would throttle fan-out.
	providerHTTP := &http.Client{
		Timeout:   30 * time.Second,
		Transport: transport.NewPooledTransport(),
	}

	urls := make([]string, d)
	for s := 0; s < d; s++ {
		fleet, err := provider.NewFleet()
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		for i := 0; i < n; i++ {
			opts := provider.Options{}
			if provLatency > 0 {
				opts.Latency = provider.LatencyModel{PerOp: provLatency}
				opts.Sleep = time.Sleep
			}
			// Uniform cost level: placement prefers strictly cheaper
			// providers and only load-balances within a cost tier, so a
			// mixed-cost bench fleet would concentrate all load on its
			// cheapest member and idle the rest. Equal CL turns the
			// tie-break into least-load placement across the whole fleet —
			// the symmetric queueing bank the throughput curve assumes.
			mem, err := provider.New(provider.Info{
				Name: fmt.Sprintf("s%02dp%02d", s, i),
				PL:   privacy.High,
				CL:   1,
			}, opts)
			if err != nil {
				shutdown()
				return nil, nil, err
			}
			url, srv, err := serveLoopback(transport.NewProviderServer(mem))
			if err != nil {
				shutdown()
				return nil, nil, err
			}
			servers = append(servers, srv)
			remote, err := transport.DialProvider(url, providerHTTP)
			if err != nil {
				shutdown()
				return nil, nil, err
			}
			if err := fleet.Add(remote); err != nil {
				shutdown()
				return nil, nil, err
			}
		}

		dist, err := core.New(core.Config{
			Fleet:        fleet,
			CacheBytes:   cacheBytes,
			HedgeAfter:   hedgeAfter,
			StreamWindow: streamWindow,
		})
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		url, srv, err := serveLoopback(transport.NewDistributorServer(dist))
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		servers = append(servers, srv)
		urls[s] = url
	}
	return urls, shutdown, nil
}

// serveLoopback binds a handler to an ephemeral loopback port.
func serveLoopback(h http.Handler) (string, *http.Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), srv, nil
}
