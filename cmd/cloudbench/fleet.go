package main

import (
	"time"

	"repro/internal/core"
	"repro/internal/localfleet"
)

// startLocalFleet stands up n provider HTTP servers and one distributor
// HTTP server on loopback — real sockets, real transport, same wire path
// as a multi-host deployment — and returns the distributor's base URL
// plus a shutdown function. The distributor reaches its providers
// through RemoteProvider clients, so the measured stack is the full
// networked architecture, not an in-process shortcut.
func startLocalFleet(n int, provLatency time.Duration, cacheBytes int64, hedgeAfter time.Duration, streamWindow int) (string, func(), error) {
	urls, shutdown, err := startLocalShards(1, n, provLatency, cacheBytes, hedgeAfter, streamWindow)
	if err != nil {
		return "", nil, err
	}
	return urls[0], shutdown, nil
}

// startLocalShards stands up d independent distributors, each over its
// own fleet of n loopback provider servers — the local form of the
// sharded deployment the scaling curve measures (internal/localfleet,
// the fixture shared with the minecheck adversary harness).
func startLocalShards(d, n int, provLatency time.Duration, cacheBytes int64, hedgeAfter time.Duration, streamWindow int) ([]string, func(), error) {
	cluster, err := localfleet.Start(localfleet.Config{
		Shards:      d,
		Providers:   n,
		ProvLatency: provLatency,
		Distributor: func(_ int, cfg *core.Config) {
			cfg.CacheBytes = cacheBytes
			cfg.HedgeAfter = hedgeAfter
			cfg.StreamWindow = streamWindow
		},
	})
	if err != nil {
		return nil, nil, err
	}
	return cluster.DistURLs, cluster.Close, nil
}
