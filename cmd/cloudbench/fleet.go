package main

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/transport"
)

// startLocalFleet stands up n provider HTTP servers and one distributor
// HTTP server on loopback — real sockets, real transport, same wire path
// as a multi-host deployment — and returns the distributor's base URL
// plus a shutdown function. The distributor reaches its providers
// through RemoteProvider clients, so the measured stack is the full
// networked architecture, not an in-process shortcut.
func startLocalFleet(n int, provLatency time.Duration, cacheBytes int64, hedgeAfter time.Duration, streamWindow int) (string, func(), error) {
	var servers []*http.Server
	shutdown := func() {
		for _, s := range servers {
			_ = s.Close()
		}
	}
	// One pooled transport for all distributor→provider connections; the
	// default transport's 2 idle conns per host would throttle fan-out.
	providerHTTP := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 256,
			IdleConnTimeout:     90 * time.Second,
		},
	}

	fleet, err := provider.NewFleet()
	if err != nil {
		return "", nil, err
	}
	for i := 0; i < n; i++ {
		opts := provider.Options{}
		if provLatency > 0 {
			opts.Latency = provider.LatencyModel{PerOp: provLatency}
			opts.Sleep = time.Sleep
		}
		mem, err := provider.New(provider.Info{
			Name: fmt.Sprintf("bench%02d", i),
			PL:   privacy.High,
			CL:   privacy.CostLevel(i % 4),
		}, opts)
		if err != nil {
			shutdown()
			return "", nil, err
		}
		url, srv, err := serveLoopback(transport.NewProviderServer(mem))
		if err != nil {
			shutdown()
			return "", nil, err
		}
		servers = append(servers, srv)
		remote, err := transport.DialProvider(url, providerHTTP)
		if err != nil {
			shutdown()
			return "", nil, err
		}
		if err := fleet.Add(remote); err != nil {
			shutdown()
			return "", nil, err
		}
	}

	dist, err := core.New(core.Config{
		Fleet:        fleet,
		CacheBytes:   cacheBytes,
		HedgeAfter:   hedgeAfter,
		StreamWindow: streamWindow,
	})
	if err != nil {
		shutdown()
		return "", nil, err
	}
	url, srv, err := serveLoopback(transport.NewDistributorServer(dist))
	if err != nil {
		shutdown()
		return "", nil, err
	}
	servers = append(servers, srv)
	return url, shutdown, nil
}

// serveLoopback binds a handler to an ephemeral loopback port.
func serveLoopback(h http.Handler) (string, *http.Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), srv, nil
}
