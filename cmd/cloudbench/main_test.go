package main

import (
	"strings"
	"testing"
	"time"
)

func smokeConfig() config {
	return config{
		localN:     5,
		workers:    4,
		duration:   1200 * time.Millisecond,
		warmup:     200 * time.Millisecond,
		mix:        "put=10,get=35,range=15,update=10,remove=10,sput=10,sget=10",
		sizes:      "2KiB=70,16KiB=30",
		tenants:    2,
		keys:       6,
		pl:         2,
		seed:       3,
		interval:   250 * time.Millisecond,
		hedgeAfter: 20 * time.Millisecond,
	}
}

// TestCloudbenchSmoke runs a short mixed workload against an in-process
// loopback fleet and checks the report is complete and error-free — the
// same configuration shape the CI bench-loadsmoke target uses.
func TestCloudbenchSmoke(t *testing.T) {
	rep, err := run(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("op errors under clean fleet: %d (%+v)", rep.Errors, rep.Ops)
	}
	if rep.Total.Count == 0 {
		t.Fatal("no operations measured")
	}
	for _, op := range []string{"put", "get", "range", "update", "remove", "sput", "sget"} {
		o, ok := rep.Ops[op]
		if !ok {
			t.Fatalf("op %q missing from report (ops: %v)", op, rep.Ops)
		}
		if o.Count == 0 {
			t.Fatalf("op %q measured zero times", op)
		}
		if o.P50ms > o.P99ms || o.P99ms > o.P999ms || o.P999ms > o.MaxMs {
			t.Fatalf("op %q percentiles not ordered: %+v", op, o)
		}
		if o.P50ms <= 0 {
			t.Fatalf("op %q p50 = %v, want > 0", op, o.P50ms)
		}
	}
	if len(rep.Timeline) == 0 {
		t.Fatal("empty throughput timeline")
	}
	var tlOps float64
	for _, p := range rep.Timeline {
		tlOps += p.OpsPerS * 0.25
	}
	if tlOps == 0 {
		t.Fatal("timeline recorded no throughput")
	}
	if rep.Schema != "cloudbench/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if !strings.Contains(rep.Target, "in-process fleet (5 providers)") {
		t.Fatalf("target = %q", rep.Target)
	}
	if rep.Config.Providers != 5 || rep.Config.Workers != 4 {
		t.Fatalf("config echo = %+v", rep.Config)
	}
}

// TestCloudbenchShardedSmoke drives the same short workload through a
// 2-distributor consistent-hash namespace: every op class must still
// complete error-free when files route across shards.
func TestCloudbenchShardedSmoke(t *testing.T) {
	cfg := smokeConfig()
	cfg.dists = 2
	cfg.localN = 3
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("op errors under sharded fleet: %d (%+v)", rep.Errors, rep.Ops)
	}
	if rep.Total.Count == 0 {
		t.Fatal("no operations measured")
	}
	if rep.Config.Distributors != 2 || rep.Config.Providers != 3 {
		t.Fatalf("config echo = %+v", rep.Config)
	}
	if !strings.Contains(rep.Target, "2 distributors") {
		t.Fatalf("target = %q", rep.Target)
	}
}

func TestParseMixAndSizes(t *testing.T) {
	if _, err := parseMix("put=1,get=2,range=3,update=4,remove=5"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "put", "fly=3", "put=x", "put=0,get=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Fatalf("parseMix(%q) accepted", bad)
		}
	}
	d, err := parseSizes("512B=1,4KiB=2,1MiB=3,1GiB=1")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{512, 4096, 1 << 20, 1 << 30}
	for i, sz := range d.sizes {
		if sz != want[i] {
			t.Fatalf("sizes[%d] = %d, want %d", i, sz, want[i])
		}
	}
	for _, bad := range []string{"", "4KiB", "0KiB=1", "-4B=1", "4KiB=0"} {
		if _, err := parseSizes(bad); err == nil {
			t.Fatalf("parseSizes(%q) accepted", bad)
		}
	}
}

func TestParseConfigValidation(t *testing.T) {
	if _, err := parseConfig([]string{"-workers", "0"}); err == nil {
		t.Fatal("workers=0 accepted")
	}
	if _, err := parseConfig([]string{"-warmup", "10s", "-duration", "5s"}); err == nil {
		t.Fatal("warmup >= duration accepted")
	}
	if _, err := parseConfig([]string{"-pl", "9"}); err == nil {
		t.Fatal("pl=9 accepted")
	}
	cfg, err := parseConfig([]string{"-duration", "3s", "-warmup", "500ms", "-strict"})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.strict || cfg.duration != 3*time.Second {
		t.Fatalf("cfg = %+v", cfg)
	}
}
