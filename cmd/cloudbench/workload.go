package main

import (
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/privacy"
	"repro/internal/transport"
)

// opKind enumerates the workload's operation classes.
type opKind int

const (
	opPut opKind = iota
	opGet
	opRange
	opUpdate
	opRemove
	opSPut // streaming upload via UploadFrom (io.Reader, windowed)
	opSGet // streaming download via GetFileTo (io.Writer, windowed)
	opCount
)

var opNames = [opCount]string{"put", "get", "range", "update", "remove", "sput", "sget"}

// rangeCap bounds one range read; spans are uniform in [1, rangeCap]
// clipped to the object tail.
const rangeCap = 64 << 10

// opMix is a weighted operation distribution parsed from
// "put=10,get=60,range=15,update=10,remove=5".
type opMix struct {
	weights [opCount]int
	total   int
}

func parseMix(s string) (opMix, error) {
	var m opMix
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("mix term %q: want op=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return m, fmt.Errorf("mix term %q: bad weight", part)
		}
		idx := -1
		for i, n := range opNames {
			if n == name {
				idx = i
			}
		}
		if idx < 0 {
			return m, fmt.Errorf("mix term %q: unknown op (have %v)", part, opNames)
		}
		m.weights[idx] += w
		m.total += w
	}
	if m.total == 0 {
		return m, fmt.Errorf("mix %q: all weights zero", s)
	}
	return m, nil
}

func (m opMix) pick(rng *rand.Rand) opKind {
	n := rng.Intn(m.total)
	for op, w := range m.weights {
		if n < w {
			return opKind(op)
		}
		n -= w
	}
	return opGet
}

// sizeDist is a weighted object-size distribution parsed from
// "4KiB=60,64KiB=30,256KiB=10".
type sizeDist struct {
	sizes   []int
	weights []int
	total   int
}

func parseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "GiB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GiB")
	case strings.HasSuffix(s, "MiB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MiB")
	case strings.HasSuffix(s, "KiB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KiB")
	case strings.HasSuffix(s, "B"):
		s = strings.TrimSuffix(s, "B")
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func parseSizes(s string) (sizeDist, error) {
	var d sizeDist
	for _, part := range strings.Split(s, ",") {
		szStr, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return d, fmt.Errorf("size term %q: want size=weight", part)
		}
		sz, err := parseSize(szStr)
		if err != nil {
			return d, err
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return d, fmt.Errorf("size term %q: bad weight", part)
		}
		d.sizes = append(d.sizes, sz)
		d.weights = append(d.weights, w)
		d.total += w
	}
	if d.total == 0 {
		return d, fmt.Errorf("sizes %q: all weights zero", s)
	}
	return d, nil
}

func (d sizeDist) pick(rng *rand.Rand) int {
	n := rng.Intn(d.total)
	for i, w := range d.weights {
		if n < w {
			return d.sizes[i]
		}
		n -= w
	}
	return d.sizes[len(d.sizes)-1]
}

// objInfo is one live object in a tenant's namespace.
type objInfo struct {
	name string
	size int
}

// tenant is one client account and its leased keyspace. Every op leases
// its object exclusively (acquire/release), so a concurrent remove can
// never race a read into a spurious not-found error — the harness must
// distinguish real failures from workload races to fail CI on the former.
type tenant struct {
	name     string
	password string
	floor    int

	mu   sync.Mutex
	objs []objInfo
	next int
}

// acquire leases a uniformly random object, removing it from the pool.
func (t *tenant) acquire(rng *rand.Rand) (objInfo, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.objs) == 0 {
		return objInfo{}, false
	}
	i := rng.Intn(len(t.objs))
	o := t.objs[i]
	t.objs[i] = t.objs[len(t.objs)-1]
	t.objs = t.objs[:len(t.objs)-1]
	return o, true
}

// release returns a leased (or freshly uploaded) object to the pool.
func (t *tenant) release(o objInfo) {
	t.mu.Lock()
	t.objs = append(t.objs, o)
	t.mu.Unlock()
}

// population counts poolable objects (leased ones excluded).
func (t *tenant) population() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.objs)
}

// fresh mints a tenant-unique object name.
func (t *tenant) fresh(size int) objInfo {
	t.mu.Lock()
	n := t.next
	t.next++
	t.mu.Unlock()
	return objInfo{name: fmt.Sprintf("obj-%06d", n), size: size}
}

// opRec accumulates one worker's measured-window results for one op.
type opRec struct {
	hist     *metrics.Histogram
	count    int64
	errs     int64
	bytes    int64
	firstErr error
}

func newOpRec() *opRec { return &opRec{hist: metrics.NewHistogram()} }

// worker drives one goroutine's share of the load.
type worker struct {
	rng     *rand.Rand
	client  transport.API
	tenants []*tenant
	mix     opMix
	sizes   sizeDist
	pl      privacy.Level
	block   []byte // pre-generated payload block for streaming puts
	recs    [opCount]*opRec
}

func newWorker(seed int64, client transport.API, tenants []*tenant, mix opMix, sizes sizeDist, pl privacy.Level) *worker {
	w := &worker{
		rng: rand.New(rand.NewSource(seed)), client: client,
		tenants: tenants, mix: mix, sizes: sizes, pl: pl,
		block: make([]byte, 256<<10),
	}
	w.rng.Read(w.block)
	for i := range w.recs {
		w.recs[i] = newOpRec()
	}
	return w
}

// blockReader serves size bytes from a repeating pre-generated block.
// Streaming uploads of arbitrarily large objects then cost O(block) in
// driver memory and near-zero generation CPU, so the measured latency is
// the system's, not the RNG's.
type blockReader struct {
	block []byte
	left  int
	off   int
}

func (r *blockReader) Read(p []byte) (int, error) {
	if r.left == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.block[r.off:])
	if n > r.left {
		n = r.left
	}
	r.left -= n
	r.off = (r.off + n) % len(r.block)
	return n, nil
}

// step executes one operation and returns its class, payload bytes
// moved, and the latency of the timed distributor call alone (payload
// generation and sizing reads are excluded, so percentiles measure the
// system, not the driver).
func (w *worker) step() (op opKind, n int64, lat time.Duration, err error) {
	tn := w.tenants[w.rng.Intn(len(w.tenants))]
	op = w.mix.pick(w.rng)
	var obj objInfo
	if op != opPut && op != opSPut {
		if op == opRemove && tn.population() <= tn.floor {
			// Keep the namespace from draining: a remove that would
			// shrink the pool below its floor becomes a put.
			op = opPut
		} else {
			var ok bool
			if obj, ok = tn.acquire(w.rng); !ok {
				op = opPut // pool momentarily empty: grow it instead
			}
		}
	}

	switch op {
	case opPut:
		obj = tn.fresh(w.sizes.pick(w.rng))
		data := make([]byte, obj.size)
		w.rng.Read(data)
		start := time.Now()
		_, err = w.client.Upload(tn.name, tn.password, obj.name, data, w.pl, transport.UploadOptions{})
		lat = time.Since(start)
		if err == nil {
			tn.release(obj)
		}
		return op, int64(obj.size), lat, err

	case opGet:
		start := time.Now()
		data, gerr := w.client.GetFile(tn.name, tn.password, obj.name)
		lat = time.Since(start)
		tn.release(obj)
		if gerr == nil && len(data) != obj.size {
			// A short read here is exactly the silent-truncation class of
			// bug the transport layer must never let through.
			gerr = fmt.Errorf("get %s/%s: %d bytes, want %d", tn.name, obj.name, len(data), obj.size)
		}
		return op, int64(obj.size), lat, gerr

	case opRange:
		off := w.rng.Intn(obj.size)
		l := min(obj.size-off, 1+w.rng.Intn(rangeCap))
		start := time.Now()
		data, gerr := w.client.GetRange(tn.name, tn.password, obj.name, off, l)
		lat = time.Since(start)
		tn.release(obj)
		if gerr == nil && len(data) != l {
			gerr = fmt.Errorf("range %s/%s[%d:+%d]: %d bytes", tn.name, obj.name, off, l, len(data))
		}
		return op, int64(l), lat, gerr

	case opSPut:
		obj = tn.fresh(w.sizes.pick(w.rng))
		r := &blockReader{block: w.block, left: obj.size}
		start := time.Now()
		_, err = w.client.UploadFrom(tn.name, tn.password, obj.name, r, w.pl, transport.UploadOptions{})
		lat = time.Since(start)
		if err == nil {
			tn.release(obj)
		}
		return op, int64(obj.size), lat, err

	case opSGet:
		start := time.Now()
		got, gerr := w.client.GetFileTo(io.Discard, tn.name, tn.password, obj.name)
		lat = time.Since(start)
		tn.release(obj)
		if gerr == nil && got != int64(obj.size) {
			gerr = fmt.Errorf("sget %s/%s: %d bytes, want %d", tn.name, obj.name, got, obj.size)
		}
		return op, int64(obj.size), lat, gerr

	case opUpdate:
		// Sizing read (untimed): the replacement must preserve chunk 0's
		// length or every later get/range against the recorded object
		// size would misfire.
		cur, gerr := w.client.GetChunk(tn.name, tn.password, obj.name, 0)
		if gerr != nil {
			tn.release(obj)
			return op, 0, 0, gerr
		}
		data := make([]byte, len(cur))
		w.rng.Read(data)
		start := time.Now()
		err = w.client.UpdateChunk(tn.name, tn.password, obj.name, 0, data)
		lat = time.Since(start)
		tn.release(obj)
		return op, int64(len(data)), lat, err

	default: // opRemove
		start := time.Now()
		err = w.client.RemoveFile(tn.name, tn.password, obj.name)
		lat = time.Since(start)
		// On failure the object's fate is unknown; keep it out of the
		// pool either way so later reads cannot hit a half-removed file.
		return op, int64(obj.size), lat, err
	}
}

// loop runs steps until deadline, recording measured-window results into
// the worker's recorders and every completion into the timeline.
func (w *worker) loop(deadline, warmEnd time.Time, tl *timeline) {
	for time.Now().Before(deadline) {
		op, n, lat, err := w.step()
		now := time.Now()
		if err != nil {
			n = 0 // failed ops move no accountable payload
		}
		tl.record(now, n, err != nil)
		if !now.After(warmEnd) {
			continue
		}
		r := w.recs[op]
		r.count++
		if err != nil {
			r.errs++
			if r.firstErr == nil {
				r.firstErr = err
			}
		} else {
			r.bytes += n
			r.hist.RecordDuration(lat)
		}
	}
}
