// Command benchjson summarizes `go test -bench` output into a JSON
// report. It reads the benchmark text from stdin, aggregates repeated
// runs (-count N) by taking the fastest repetition — the least-noise
// estimate on a shared machine — and emits per-benchmark numbers plus
// three derived sections:
//
//   - kernel_speedups: word-wide kernel vs the scalar reference compiled
//     into the same binary (the scalar/word sub-benchmark pairs),
//   - tail_speedups: hedged vs unhedged slow-provider reads from the
//     same binary (the tail-read acceptance ratio), and
//   - baseline_speedups: current numbers vs the recorded
//     pre-optimization baselines of the data-plane fast-path work.
//
// With -load it additionally embeds a cmd/cloudbench mixed-workload
// report (latency percentiles + throughput timeline) as the "load"
// record, so load-harness runs land in the same BENCH_N.json trajectory
// as the microbenchmarks. Repeatable -scaling flags condense further
// cloudbench reports — one per distributor count — into the "scaling"
// curve plus "scaling_speedups" (put+get throughput vs the
// 1-distributor point). -frontier embeds a cmd/minecheck sweep (the
// adversary-in-the-loop privacy-vs-performance frontier) as the
// "frontier" record.
//
// Usage: go test -bench . -benchmem ./... | benchjson -out BENCH.json
//
//	benchjson -load cloudbench.json -out BENCH.json < /dev/null
//	benchjson -scaling d1.json -scaling d2.json -scaling d4.json -out BENCH.json < /dev/null
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/loadreport"
	"repro/internal/minecheck"
)

// result is one benchmark's aggregated numbers.
type result struct {
	NsOp     float64 `json:"ns_op"`
	MBs      float64 `json:"mb_s,omitempty"`
	BOp      int64   `json:"b_op,omitempty"`
	AllocsOp int64   `json:"allocs_op,omitempty"`
	Runs     int     `json:"runs"`
}

// baseline records a pre-optimization measurement this report compares
// against. Captured on the same class of machine before the word-wide
// kernels, pooled buffers and single-buffer file assembly landed.
type baseline struct {
	NsOp     float64 `json:"ns_op,omitempty"`
	AllocsOp int64   `json:"allocs_op,omitempty"`
	Note     string  `json:"note"`
}

// baselines are the seed-tree numbers the fast-path acceptance criteria
// are measured against.
var baselines = map[string]baseline{
	"BenchmarkStripe/raid5/64KiB": {
		NsOp: 146975, Note: "scalar byte-loop parity, seed tree"},
	"BenchmarkStripe/raid6/64KiB": {
		NsOp: 469695, Note: "scalar byte-loop P+Q, seed tree"},
	"BenchmarkReconstruct/raid6/2data/64KiB": {
		NsOp: 419898, Note: "scalar two-loss solve, seed tree"},
	"BenchmarkGetFile/plain/256KiB": {
		NsOp: 1344019, AllocsOp: 139, Note: "per-chunk slices + concat assembly, seed tree"},
	"BenchmarkGetFile/mislead/256KiB": {
		NsOp: 9795698, AllocsOp: 139, Note: "map-lookup Strip + concat assembly, seed tree"},
}

// kernelPairs maps a word-kernel benchmark to its scalar reference run
// from the same binary; the ratio is the in-tree kernel speedup.
var kernelPairs = map[string]string{
	"BenchmarkParityKernel/raid6/word/64KiB":            "BenchmarkParityKernel/raid6/scalar/64KiB",
	"BenchmarkReconstructKernel/raid6/2data/word/64KiB": "BenchmarkReconstructKernel/raid6/2data/scalar/64KiB",
}

// tailPairs maps a hedged tail-read benchmark to its unhedged reference
// from the same binary; the ratio is the slow-provider read speedup the
// hedging acceptance criterion (>= 2x) is measured on.
var tailPairs = map[string]string{
	"BenchmarkGetFileTail/hedged/256KiB": "BenchmarkGetFileTail/unhedged/256KiB",
}

// walPairs maps each durable upload benchmark to the in-memory baseline
// from the same binary; the ratio is the WAL overhead (>1 = slower than
// mem). The acceptance criterion is grouped <= 1.15x.
var walPairs = map[string]string{
	"BenchmarkUploadWALOverhead/off":     "BenchmarkUploadWALOverhead/mem",
	"BenchmarkUploadWALOverhead/grouped": "BenchmarkUploadWALOverhead/mem",
	"BenchmarkUploadWALOverhead/always":  "BenchmarkUploadWALOverhead/mem",
}

// report is the emitted JSON document.
type report struct {
	Results          map[string]result   `json:"results"`
	KernelSpeedups   map[string]float64  `json:"kernel_speedups"`
	TailSpeedups     map[string]float64  `json:"tail_speedups"`
	WALOverheads     map[string]float64  `json:"wal_overheads"`
	BaselineSpeedups map[string]float64  `json:"baseline_speedups"`
	Baselines        map[string]baseline `json:"baselines"`
	Load             *loadreport.Report  `json:"load,omitempty"`
	Scaling          []scalingPoint      `json:"scaling,omitempty"`
	ScalingSpeedups  map[string]float64  `json:"scaling_speedups,omitempty"`
	Frontier         *minecheck.Frontier `json:"frontier,omitempty"`
}

// scalingPoint condenses one cloudbench run of the multi-distributor
// scaling sweep: the same workload profile replayed against 1, 2, 4, …
// shards. putget_ops_per_s is the aggregate put+get throughput the
// scaling acceptance criterion is measured on.
type scalingPoint struct {
	Distributors  int     `json:"distributors"`
	PutGetOpsPerS float64 `json:"putget_ops_per_s"`
	TotalOpsPerS  float64 `json:"total_ops_per_s"`
	TotalMBPerS   float64 `json:"total_mb_per_s"`
	Errors        int64   `json:"errors"`
}

// scalingFromLoad condenses a full cloudbench report to its sweep point.
func scalingFromLoad(lr *loadreport.Report) scalingPoint {
	d := lr.Config.Distributors
	if d == 0 {
		d = 1
	}
	return scalingPoint{
		Distributors:  d,
		PutGetOpsPerS: round2(lr.Ops["put"].OpsPerS + lr.Ops["get"].OpsPerS),
		TotalOpsPerS:  lr.Total.OpsPerS,
		TotalMBPerS:   lr.Total.MBPerS,
		Errors:        lr.Errors,
	}
}

// readLoad parses a cmd/cloudbench report for embedding.
func readLoad(path string) (*loadreport.Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var lr loadreport.Report
	if err := json.Unmarshal(raw, &lr); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if lr.Schema != loadreport.Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, lr.Schema, loadreport.Schema)
	}
	return &lr, nil
}

// readFrontier parses a cmd/minecheck sweep for embedding.
func readFrontier(path string) (*minecheck.Frontier, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f minecheck.Frontier
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != minecheck.FrontierSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, minecheck.FrontierSchema)
	}
	return &f, nil
}

// benchLine matches one `go test -bench` result line, with the optional
// -benchmem and MB/s columns.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) MB/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "", "write the JSON report to this file ('' or '-' = stdout)")
	loadPath := flag.String("load", "", "embed this cloudbench JSON report as the load record")
	frontierPath := flag.String("frontier", "", "embed this cmd/minecheck JSON sweep as the frontier record")
	var scalingPaths []string
	flag.Func("scaling", "cloudbench JSON report for one point of the distributor-scaling sweep (repeatable)", func(p string) error {
		scalingPaths = append(scalingPaths, p)
		return nil
	})
	flag.Parse()

	var load *loadreport.Report
	if *loadPath != "" {
		var err error
		if load, err = readLoad(*loadPath); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: load report:", err)
			os.Exit(1)
		}
	}
	var frontier *minecheck.Frontier
	if *frontierPath != "" {
		var err error
		if frontier, err = readFrontier(*frontierPath); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: frontier report:", err)
			os.Exit(1)
		}
	}
	var scaling []scalingPoint
	for _, p := range scalingPaths {
		lr, err := readLoad(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: scaling report:", err)
			os.Exit(1)
		}
		scaling = append(scaling, scalingFromLoad(lr))
	}
	sort.Slice(scaling, func(i, j int) bool { return scaling[i].Distributors < scaling[j].Distributors })

	results := make(map[string]result)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		ns, _ := strconv.ParseFloat(m[2], 64)
		r, seen := results[name]
		if !seen || ns < r.NsOp {
			r.NsOp = ns
			if m[3] != "" {
				r.MBs, _ = strconv.ParseFloat(m[3], 64)
			}
			if m[4] != "" {
				r.BOp, _ = strconv.ParseInt(m[4], 10, 64)
			}
			if m[5] != "" {
				r.AllocsOp, _ = strconv.ParseInt(m[5], 10, 64)
			}
		}
		r.Runs++
		results[name] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}
	if len(results) == 0 && load == nil && len(scaling) == 0 && frontier == nil {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin and no -load/-scaling/-frontier reports")
		os.Exit(1)
	}

	rep := report{
		Load:             load,
		Scaling:          scaling,
		Frontier:         frontier,
		Results:          results,
		KernelSpeedups:   make(map[string]float64),
		TailSpeedups:     make(map[string]float64),
		WALOverheads:     make(map[string]float64),
		BaselineSpeedups: make(map[string]float64),
		Baselines:        baselines,
	}
	for word, scalar := range kernelPairs {
		w, okW := results[word]
		s, okS := results[scalar]
		if okW && okS && w.NsOp > 0 {
			rep.KernelSpeedups[word] = round2(s.NsOp / w.NsOp)
		}
	}
	for hedged, unhedged := range tailPairs {
		h, okH := results[hedged]
		u, okU := results[unhedged]
		if okH && okU && h.NsOp > 0 {
			rep.TailSpeedups[hedged] = round2(u.NsOp / h.NsOp)
		}
	}
	for durable, mem := range walPairs {
		d, okD := results[durable]
		m, okM := results[mem]
		if okD && okM && m.NsOp > 0 {
			rep.WALOverheads[durable] = round2(d.NsOp / m.NsOp)
		}
	}
	for name, base := range baselines {
		r, ok := results[name]
		if !ok || r.NsOp <= 0 {
			continue
		}
		if base.NsOp > 0 {
			rep.BaselineSpeedups[name] = round2(base.NsOp / r.NsOp)
		}
		if base.AllocsOp > 0 && r.AllocsOp > 0 {
			rep.BaselineSpeedups[name+"#allocs"] = round2(float64(base.AllocsOp) / float64(r.AllocsOp))
		}
	}
	// Scaling speedups: every sweep point's put+get throughput against
	// the 1-distributor point of the same sweep.
	if len(rep.Scaling) > 0 {
		var base float64
		for _, p := range rep.Scaling {
			if p.Distributors == 1 {
				base = p.PutGetOpsPerS
			}
		}
		if base > 0 {
			rep.ScalingSpeedups = make(map[string]float64)
			for _, p := range rep.Scaling {
				rep.ScalingSpeedups[fmt.Sprintf("%dx", p.Distributors)] = round2(p.PutGetOpsPerS / base)
			}
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" || *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: %d benchmarks -> %s\n", len(results), *out)
	for n, x := range rep.KernelSpeedups {
		fmt.Printf("  kernel  %-55s %.2fx vs scalar\n", shortName(n), x)
	}
	for n, x := range rep.TailSpeedups {
		fmt.Printf("  tail    %-55s %.2fx vs unhedged\n", shortName(n), x)
	}
	for n, x := range rep.WALOverheads {
		fmt.Printf("  wal     %-55s %.2fx vs mem\n", shortName(n), x)
	}
	for n, x := range rep.BaselineSpeedups {
		fmt.Printf("  vs-seed %-55s %.2fx\n", shortName(n), x)
	}
	if rep.Load != nil {
		for _, name := range []string{"put", "get", "range", "update", "remove", "total"} {
			o, ok := rep.Load.Ops[name]
			if name == "total" {
				o, ok = rep.Load.Total, true
			}
			if !ok {
				continue
			}
			fmt.Printf("  load    %-7s p50 %8.2fms  p99 %8.2fms  p99.9 %8.2fms  %8.1f ops/s  %7.2f MB/s\n",
				name, o.P50ms, o.P99ms, o.P999ms, o.OpsPerS, o.MBPerS)
		}
		if rep.Load.Errors > 0 {
			fmt.Printf("  load    %d op errors\n", rep.Load.Errors)
		}
	}
	for _, p := range rep.Scaling {
		fmt.Printf("  scale   %2d distributors  put+get %9.1f ops/s  total %9.1f ops/s  %7.2f MB/s  %d err  (%.2fx)\n",
			p.Distributors, p.PutGetOpsPerS, p.TotalOpsPerS, p.TotalMBPerS, p.Errors,
			rep.ScalingSpeedups[fmt.Sprintf("%dx", p.Distributors)])
	}
	if rep.Frontier != nil {
		fmt.Printf("  frontier %d cells at seed %d (see \"frontier\" record)\n",
			len(rep.Frontier.Cells), rep.Frontier.Seed)
	}
}

func round2(x float64) float64 { return float64(int64(x*100+0.5)) / 100 }

func shortName(n string) string { return strings.TrimPrefix(n, "Benchmark") }
