// Command minecheck runs the adversary-in-the-loop frontier sweep: it
// stands the real loopback deployment up once per configuration cell
// (privacy level 0–3 × RAID-5/6 × mislead on/off × cache on/off ×
// hedging on/off × 1/4 shards), drives the mixed tenant workload, mounts
// the full mining arsenal from malicious-provider vantage points, and
// emits the privacy-vs-performance frontier as minecheck/v1 JSON (for
// cmd/benchjson -frontier) plus an optional markdown table.
//
// Usage:
//
//	minecheck -seed 1 -out frontier.json
//	minecheck -seed 1 -gate-cells -table        # quick subset, stdout table
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/minecheck"
)

func main() {
	seed := flag.Int64("seed", 1, "campaign seed")
	out := flag.String("out", "", "write minecheck/v1 JSON to this file ('' or '-' = stdout)")
	table := flag.Bool("table", false, "print the frontier as a markdown table to stderr")
	gateOnly := flag.Bool("gate-cells", false, "sweep only the CI gate cells instead of the full 128-cell grid")
	flag.Parse()

	cells := minecheck.AllCells()
	if *gateOnly {
		cells = minecheck.GateCells()
	}
	fmt.Fprintf(os.Stderr, "minecheck: sweeping %d cells at seed %d\n", len(cells), *seed)
	frontier, err := minecheck.Sweep(*seed, cells)
	if err != nil {
		fmt.Fprintln(os.Stderr, "minecheck:", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(frontier, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "minecheck:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" || *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "minecheck:", err)
		os.Exit(1)
	} else {
		fmt.Fprintf(os.Stderr, "minecheck: %d cells -> %s\n", len(frontier.Cells), *out)
	}
	if *table {
		fmt.Fprint(os.Stderr, frontier.Table())
	}

	// The gate is advisory here (CI enforces it via go test); still,
	// surface any defended cell over threshold so a manual sweep shouts.
	th := minecheck.DefaultThresholds()
	for i := range frontier.Cells {
		for _, v := range frontier.Cells[i].Gate(th) {
			fmt.Fprintln(os.Stderr, "minecheck: WARNING:", v)
		}
	}
}
