// Command distributor runs the Cloud Data Distributor as an HTTP service.
// Providers are either remote (HTTP URLs from -providers) or an in-process
// simulated fleet (-local-providers), so the whole paper architecture can
// run as separate OS processes or as one.
//
// Usage:
//
//	distributor -addr :9000 -providers http://localhost:9001,http://localhost:9002,http://localhost:9003
//	distributor -addr :9000 -local-providers 5
//
// With -shards the process instead runs as a thin routing proxy over an
// existing fleet of distributors: it owns no providers and no metadata,
// only the consistent-hash routing decision:
//
//	distributor -addr :8999 -shards http://localhost:9000,http://localhost:9001
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/raid"
	"repro/internal/transport"
	"repro/internal/wal"
)

func main() {
	var (
		addr      = flag.String("addr", ":9000", "listen address")
		providers = flag.String("providers", "", "comma-separated provider base URLs")
		localN    = flag.Int("local-providers", 0, "run N in-process simulated providers instead of remote ones")
		width     = flag.Int("stripe-width", 4, "max data shards per RAID stripe")
		raid6     = flag.Bool("raid6", false, "default to RAID-6 instead of RAID-5")
		secret    = flag.String("secret", "cloud-data-distributor", "virtual-id PRF secret")
		cacheB    = flag.Int64("cache-bytes", 0, "read-side chunk cache bound in bytes (0 disables)")
		hedge     = flag.Duration("hedge-after", 50*time.Millisecond, "max wait before hedging a read to the next replica/parity rung (0 disables)")
		streamW   = flag.Int("stream-window", 0, "stripes a streaming transfer may hold in flight (0 = default 4)")
		walDir    = flag.String("wal-dir", "", "write-ahead log directory for durable metadata (empty = in-memory)")
		walSync   = flag.String("wal-sync", "grouped", "WAL sync policy: always, grouped, off")
		snapEvery = flag.Int("snapshot-every", 0, "checkpoint cadence in committed records (0 = default 4096)")
		drainT    = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown bound for draining in-flight writes")
		shards    = flag.String("shards", "", "run as a shard-routing proxy over these distributor base URLs (no local providers)")
	)
	flag.Parse()

	if *shards != "" {
		runShardProxy(*addr, *shards, *drainT)
		return
	}

	policy, err := wal.ParseSyncPolicy(*walSync)
	if err != nil {
		log.Fatalf("distributor: %v", err)
	}
	fleet, err := buildFleet(*providers, *localN)
	if err != nil {
		log.Fatalf("distributor: %v", err)
	}
	level := raid.RAID5
	if *raid6 {
		level = raid.RAID6
	}
	dist, err := core.New(core.Config{
		Fleet:         fleet,
		DefaultRaid:   level,
		StripeWidth:   *width,
		Secret:        []byte(*secret),
		CacheBytes:    *cacheB,
		HedgeAfter:    *hedge,
		StreamWindow:  *streamW,
		WALDir:        *walDir,
		WALSync:       policy,
		SnapshotEvery: *snapEvery,
	})
	if err != nil {
		log.Fatalf("distributor: %v", err)
	}
	if *walDir != "" {
		h := dist.WALHealth()
		fmt.Printf("durable metadata in %s (sync %s): replayed %d records at lsn %d\n",
			*walDir, h.Policy, h.Replayed, h.NextLSN)
	}
	fmt.Printf("cloud data distributor over %d providers (default %v) listening on %s\n",
		fleet.Len(), level, *addr)

	srv := transport.NewHTTPServer(*addr, transport.NewDistributorServer(dist))
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		log.Fatalf("distributor: %v", err)
	case sig := <-sigCh:
		fmt.Printf("received %v: draining and checkpointing (bound %v)\n", sig, *drainT)
		ctx, cancel := context.WithTimeout(context.Background(), *drainT)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("distributor: http shutdown: %v", err)
		}
		if err := dist.Close(ctx); err != nil {
			log.Fatalf("distributor: close: %v", err)
		}
		fmt.Println("clean shutdown: final checkpoint written")
	}
}

// runShardProxy serves the single-distributor wire protocol while
// routing every data operation to the shard owning its file key.
func runShardProxy(addr, shardURLs string, drainT time.Duration) {
	var urls []string
	for _, u := range strings.Split(shardURLs, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	sys, err := transport.NewSystem(urls, nil)
	if err != nil {
		log.Fatalf("distributor: %v", err)
	}
	fmt.Printf("shard-routing proxy over %d distributors listening on %s\n", sys.Shards(), addr)
	for i, u := range sys.URLs() {
		fmt.Printf("  shard %d: %s\n", i, u)
	}

	srv := transport.NewHTTPServer(addr, transport.NewShardProxy(sys))
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		log.Fatalf("distributor: %v", err)
	case sig := <-sigCh:
		fmt.Printf("received %v: draining (bound %v)\n", sig, drainT)
		ctx, cancel := context.WithTimeout(context.Background(), drainT)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("distributor: http shutdown: %v", err)
		}
		fmt.Println("clean shutdown: proxy holds no state")
	}
}

func buildFleet(urls string, localN int) (*provider.Fleet, error) {
	fleet, err := provider.NewFleet()
	if err != nil {
		return nil, err
	}
	switch {
	case urls != "":
		for _, u := range strings.Split(urls, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			rp, err := transport.DialProvider(u, nil)
			if err != nil {
				return nil, fmt.Errorf("dial %s: %w", u, err)
			}
			if err := fleet.Add(rp); err != nil {
				return nil, err
			}
			fmt.Printf("joined provider %q at %s (PL%d, CL%d)\n",
				rp.Info().Name, u, rp.Info().PL, rp.Info().CL)
		}
	case localN > 0:
		for i := 0; i < localN; i++ {
			p, err := provider.New(provider.Info{
				Name: fmt.Sprintf("local%02d", i),
				PL:   privacy.High,
				CL:   privacy.CostLevel(i % 4),
			}, provider.Options{})
			if err != nil {
				return nil, err
			}
			if err := fleet.Add(p); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("need -providers or -local-providers")
	}
	if fleet.Len() == 0 {
		return nil, fmt.Errorf("no providers configured")
	}
	return fleet, nil
}
