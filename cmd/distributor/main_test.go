package main

import (
	"net/http/httptest"
	"testing"

	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/transport"
)

func TestBuildFleetLocal(t *testing.T) {
	fleet, err := buildFleet("", 5)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Len() != 5 {
		t.Fatalf("fleet = %d", fleet.Len())
	}
	p, _ := fleet.At(0)
	if p.Info().PL != privacy.High {
		t.Fatalf("PL = %v", p.Info().PL)
	}
}

func TestBuildFleetRemote(t *testing.T) {
	mem := provider.MustNew(provider.Info{Name: "r1", PL: privacy.Moderate, CL: 1}, provider.Options{})
	srv := httptest.NewServer(transport.NewProviderServer(mem))
	defer srv.Close()
	fleet, err := buildFleet(srv.URL+" , ", 0)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Len() != 1 {
		t.Fatalf("fleet = %d", fleet.Len())
	}
	p, _, err := fleet.ByName("r1")
	if err != nil || p.Info().CL != 1 {
		t.Fatalf("remote provider: %v", err)
	}
}

func TestBuildFleetErrors(t *testing.T) {
	if _, err := buildFleet("", 0); err == nil {
		t.Fatal("no providers accepted")
	}
	if _, err := buildFleet("http://127.0.0.1:1", 0); err == nil {
		t.Fatal("dead provider URL accepted")
	}
}
