// Command cloudctl is the client-side CLI for a running Cloud Data
// Distributor: register clients and passwords, upload/fetch/update/remove
// files and chunks, and inspect the paper's three tables.
//
// Usage:
//
//	cloudctl -server http://localhost:9000 register bob
//	cloudctl -server http://localhost:9000 passwd bob x9pr 1
//	cloudctl -server http://localhost:9000 upload bob x9pr file1 ./local.csv 1
//	cloudctl -server http://localhost:9000 get bob x9pr file1 ./out.csv
//	cloudctl -server http://localhost:9000 get-chunk bob x9pr file1 0
//	cloudctl -server http://localhost:9000 tables
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/raid"
	"repro/internal/transport"
	"repro/internal/wal"
)

func main() {
	server := flag.String("server", "http://localhost:9000", "distributor base URL")
	shards := flag.String("shards", "", "comma-separated shard URLs for shard-aware commands (locate)")
	pl := flag.Int("pl", 1, "privacy level for uploads (0-3)")
	raid6 := flag.Bool("raid6", false, "request RAID-6 assurance on upload")
	mislead := flag.Float64("mislead", 0, "misleading-byte fraction for uploads [0,1)")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	cmd, rest := args[0], args[1:]
	if cmd == "locate" {
		// locate is routing-only: it builds the client-side shard router
		// instead of a single-distributor client.
		if err := locateCmd(*server, *shards, rest); err != nil {
			log.Fatalf("cloudctl locate: %v", err)
		}
		return
	}
	var hc *http.Client
	if cmd == "put" || cmd == "cat" {
		// Streaming transfers run as long as the object is large; the
		// default 30-second client timeout would sever them mid-body.
		hc = &http.Client{}
	}
	c := transport.NewClient(*server, hc)
	if err := run(c, cmd, rest, *pl, *raid6, *mislead); err != nil {
		log.Fatalf("cloudctl %s: %v", cmd, err)
	}
}

// locateCmd resolves which shard owns ⟨client, filename⟩ using the same
// consistent-hash router the data path uses, then asks that shard for
// its replica set (primary + followers) if it runs replicated.
func locateCmd(server, shards string, args []string) error {
	need(args, 2, "[-shards url1,url2,...] locate <client> <filename>")
	urls := []string{server}
	if shards != "" {
		urls = nil
		for _, u := range strings.Split(shards, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
	}
	sys, err := transport.NewSystem(urls, nil)
	if err != nil {
		return err
	}
	loc, err := sys.Locate(args[0], args[1])
	if err != nil {
		return err
	}
	fmt.Printf("file %s/%s\n", args[0], args[1])
	fmt.Printf("  key    %016x\n", loc.Key)
	fmt.Printf("  shard  %d of %d\n", loc.Shard, sys.Shards())
	fmt.Printf("  owner  %s\n", loc.ShardURL)
	rep, err := sys.Shard(loc.Shard).HealthReport()
	if err != nil {
		return fmt.Errorf("owner unreachable: %w", err)
	}
	if len(rep.Replication) == 0 {
		fmt.Println("  replicas: none (shard runs unreplicated)")
		return nil
	}
	fmt.Println("  replicas:")
	for _, r := range rep.Replication {
		state := "up"
		if r.Down {
			state = "down"
		}
		fmt.Printf("    %-9s member %d  %-4s gen=%d applied=%d lag=%d\n",
			r.Role, r.Index, state, r.Generation, r.AppliedSeq, r.LagRecords)
	}
	return nil
}

func run(c *transport.Client, cmd string, args []string, pl int, raid6 bool, mislead float64) error {
	switch cmd {
	case "register":
		need(args, 1, "register <client>")
		return c.RegisterClient(args[0])
	case "passwd":
		need(args, 3, "passwd <client> <password> <pl>")
		lvl, err := strconv.Atoi(args[2])
		if err != nil {
			return fmt.Errorf("pl: %w", err)
		}
		return c.AddPassword(args[0], args[1], privacy.Level(lvl))
	case "upload":
		need(args, 4, "upload <client> <password> <filename> <localpath> [pl]")
		if len(args) >= 5 {
			lvl, err := strconv.Atoi(args[4])
			if err != nil {
				return fmt.Errorf("pl: %w", err)
			}
			pl = lvl
		}
		data, err := os.ReadFile(args[3])
		if err != nil {
			return err
		}
		opts := transport.UploadOptions{MisleadFraction: mislead}
		if raid6 {
			opts.Assurance = raid.RAID6
		}
		info, err := c.Upload(args[0], args[1], args[2], data, privacy.Level(pl), opts)
		if err != nil {
			return err
		}
		fmt.Printf("uploaded %s: %d bytes -> %d chunks at %v, %v assurance\n",
			info.Filename, info.Bytes, info.Chunks, info.PL, info.Raid)
		return nil
	case "put":
		// The streaming twin of upload: the local file (or stdin with "-")
		// feeds the wire directly, so neither this process nor the
		// distributor ever holds the whole object.
		need(args, 4, "put <client> <password> <filename> <localpath|-> [pl]")
		if len(args) >= 5 {
			lvl, err := strconv.Atoi(args[4])
			if err != nil {
				return fmt.Errorf("pl: %w", err)
			}
			pl = lvl
		}
		var r io.Reader = os.Stdin
		if args[3] != "-" {
			f, err := os.Open(args[3])
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		opts := transport.UploadOptions{MisleadFraction: mislead}
		if raid6 {
			opts.Assurance = raid.RAID6
		}
		info, err := c.UploadFrom(args[0], args[1], args[2], r, privacy.Level(pl), opts)
		if err != nil {
			return err
		}
		fmt.Printf("streamed %s: %d bytes -> %d chunks at %v, %v assurance\n",
			info.Filename, info.Bytes, info.Chunks, info.PL, info.Raid)
		return nil
	case "cat":
		// The streaming twin of get: bytes land on stdout (or a file) as
		// they arrive, with bounded memory at every hop.
		need(args, 3, "cat <client> <password> <filename> [outpath|-]")
		var w io.Writer = os.Stdout
		toFile := len(args) >= 4 && args[3] != "-"
		if toFile {
			f, err := os.Create(args[3])
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		n, err := c.GetFileTo(w, args[0], args[1], args[2])
		if err != nil {
			return err
		}
		if toFile {
			fmt.Printf("streamed %s: %d bytes -> %s\n", args[2], n, args[3])
		}
		return nil
	case "get":
		need(args, 4, "get <client> <password> <filename> <outpath>")
		data, err := c.GetFile(args[0], args[1], args[2])
		if err != nil {
			return err
		}
		if err := os.WriteFile(args[3], data, 0o644); err != nil {
			return err
		}
		fmt.Printf("retrieved %s: %d bytes -> %s\n", args[2], len(data), args[3])
		return nil
	case "get-chunk":
		need(args, 4, "get-chunk <client> <password> <filename> <serial>")
		serial, err := strconv.Atoi(args[3])
		if err != nil {
			return fmt.Errorf("serial: %w", err)
		}
		data, err := c.GetChunk(args[0], args[1], args[2], serial)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err
	case "snapshot":
		need(args, 4, "snapshot <client> <password> <filename> <serial>")
		serial, err := strconv.Atoi(args[3])
		if err != nil {
			return fmt.Errorf("serial: %w", err)
		}
		data, err := c.GetSnapshot(args[0], args[1], args[2], serial)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err
	case "update-chunk":
		need(args, 5, "update-chunk <client> <password> <filename> <serial> <localpath>")
		serial, err := strconv.Atoi(args[3])
		if err != nil {
			return fmt.Errorf("serial: %w", err)
		}
		data, err := os.ReadFile(args[4])
		if err != nil {
			return err
		}
		return c.UpdateChunk(args[0], args[1], args[2], serial, data)
	case "rm":
		need(args, 3, "rm <client> <password> <filename>")
		return c.RemoveFile(args[0], args[1], args[2])
	case "rm-chunk":
		need(args, 4, "rm-chunk <client> <password> <filename> <serial>")
		serial, err := strconv.Atoi(args[3])
		if err != nil {
			return fmt.Errorf("serial: %w", err)
		}
		return c.RemoveChunk(args[0], args[1], args[2], serial)
	case "get-range":
		need(args, 5, "get-range <client> <password> <filename> <offset> <length>")
		offset, err := strconv.Atoi(args[3])
		if err != nil {
			return fmt.Errorf("offset: %w", err)
		}
		length, err := strconv.Atoi(args[4])
		if err != nil {
			return fmt.Errorf("length: %w", err)
		}
		data, err := c.GetRange(args[0], args[1], args[2], offset, length)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err
	case "scrub":
		rep, err := c.Scrub()
		if err != nil {
			return err
		}
		fmt.Printf("scrub: checked=%d healthy=%d repaired=%d unrepairable=%d\n",
			rep.ChunksChecked, rep.Healthy, rep.Repaired, rep.Unrepairable)
		return nil
	case "decommission":
		need(args, 1, "decommission <provider-index>")
		idx, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("provider-index: %w", err)
		}
		rep, err := c.Decommission(idx)
		if err != nil {
			return err
		}
		fmt.Printf("decommissioned %s: chunks=%d mirrors=%d parity=%d snapshots=%d moved\n",
			rep.Provider, rep.ChunksMoved, rep.MirrorsMoved, rep.ParityMoved, rep.SnapshotsMoved)
		return nil
	case "count":
		need(args, 3, "count <client> <password> <filename>")
		n, err := c.ChunkCount(args[0], args[1], args[2])
		if err != nil {
			return err
		}
		fmt.Println(n)
		return nil
	case "tables":
		prows, err := c.ProviderTable()
		if err != nil {
			return err
		}
		fmt.Println("Table I — Cloud Provider Table")
		fmt.Print(core.FormatProviderTable(prows))
		crows, err := c.ClientTable()
		if err != nil {
			return err
		}
		fmt.Println("\nTable II — Client Table")
		fmt.Print(core.FormatClientTable(crows))
		chrows, err := c.ChunkTable()
		if err != nil {
			return err
		}
		fmt.Println("\nTable III — Chunk Table")
		fmt.Print(core.FormatChunkTable(chrows))
		return nil
	case "stats":
		s, err := c.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("clients=%d files=%d chunks=%d parity=%d stripes=%d per-provider=%v\n",
			s.Clients, s.Files, s.Chunks, s.ParityShards, s.Stripes, s.PerProvider)
		return nil
	case "health":
		provs, err := c.ProviderHealth()
		if err != nil {
			return err
		}
		m, err := c.Metrics()
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %-9s %10s %10s %8s %6s %8s %9s\n",
			"PROVIDER", "STATE", "SUCCESSES", "FAILURES", "CONSEC", "OPENS", "WINDOW", "EWMA(ms)")
		for _, p := range provs {
			fmt.Printf("%-12s %-9s %10d %10d %8d %6d %7.0f%% %9.2f\n",
				p.Provider, p.State, p.Successes, p.Failures,
				p.ConsecutiveFailures, p.Opens, 100*p.WindowFailureRatio, p.LatencyEWMAMs)
		}
		fmt.Printf("\nfailovers=%d rollback-deletes=%d circuit-opens=%d probe-successes=%d\n",
			m.WriteFailovers, m.RollbackDeletes, m.CircuitOpens, m.ProbeSuccesses)
		fmt.Printf("hedged-reads=%d hedge-wins=%d coalesced-reads=%d corruptions-detected=%d\n",
			m.HedgedReads, m.HedgeWins, m.CoalescedReads, m.CorruptionsDetected)
		if m.WAL.Enabled {
			fmt.Printf("wal: records=%d fsyncs=%d checkpoints=%d tail=%d replayed=%d orphans-swept=%d\n",
				m.WAL.Records, m.WAL.Fsyncs, m.WAL.Checkpoints, m.WAL.SinceCheckpoint,
				m.WAL.Replayed, m.WAL.RecoveryOrphans)
		}
		if rep, err := c.HealthReport(); err == nil && len(rep.Replication) > 0 {
			fmt.Printf("\nreplication (%s):\n", rep.Status)
			fmt.Printf("%-10s %7s %-5s %12s %12s %8s %9s\n",
				"ROLE", "MEMBER", "STATE", "GENERATION", "APPLIED", "LAG", "NEEDSNAP")
			for _, r := range rep.Replication {
				state := "up"
				if r.Down {
					state = "down"
				}
				fmt.Printf("%-10s %7d %-5s %12d %12d %8d %9v\n",
					r.Role, r.Index, state, r.Generation, r.AppliedSeq, r.LagRecords, r.NeedSnapshot)
			}
		}
		return nil
	case "wal-info":
		need(args, 1, "wal-info <wal-dir>")
		return walInfo(args[0])
	default:
		usage()
		return nil
	}
}

// walInfo inspects a WAL directory offline: the segment/snapshot
// inventory, then a full replay validation. Corruption makes it return
// an error, which main turns into a nonzero exit — so it doubles as a
// pre-restart integrity gate in scripts.
func walInfo(dir string) error {
	info, err := wal.Inspect(dir)
	if err != nil {
		return err
	}
	fmt.Printf("wal directory %s\n", info.Dir)
	fmt.Printf("%-28s %12s %10s %10s %s\n", "SEGMENT", "BASE-LSN", "RECORDS", "BYTES", "NOTE")
	for _, s := range info.Segments {
		note := ""
		if s.TornTail {
			note = "torn tail (will be truncated on open)"
		}
		fmt.Printf("%-28s %12d %10d %10d %s\n", filepath.Base(s.Path), s.Base, s.Records, s.Bytes, note)
	}
	fmt.Printf("%-28s %12s %10s %s\n", "SNAPSHOT", "LSN", "BYTES", "AGE")
	for _, s := range info.Snapshots {
		fmt.Printf("%-28s %12d %10d %s\n", filepath.Base(s.Path), s.LSN, s.Bytes,
			time.Since(s.ModTime).Round(time.Second))
	}

	rep, err := core.ValidateWALDir(dir)
	if err != nil {
		return fmt.Errorf("replay validation FAILED: %w", err)
	}
	fmt.Printf("\nreplay validation OK: snapshot=%v (lsn %d), %d tail records, torn-tail=%v\n",
		rep.HasSnapshot, rep.SnapshotLSN, rep.Records, rep.TailTruncated)
	fmt.Printf("recovered state: gen=%d clients=%d files=%d live-chunks=%d stripes=%d\n",
		rep.Gen, rep.Clients, rep.Files, rep.LiveChunks, rep.Stripes)
	return nil
}

func need(args []string, n int, usageLine string) {
	if len(args) < n {
		fmt.Fprintf(os.Stderr, "usage: cloudctl %s\n", usageLine)
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: cloudctl [-server URL] [-pl N] [-raid6] [-mislead F] <command> ...

commands:
  register <client>
  passwd <client> <password> <pl>
  upload <client> <password> <filename> <localpath> [pl]
  get <client> <password> <filename> <outpath>
  put <client> <password> <filename> <localpath|-> [pl]   (streaming; "-" reads stdin)
  cat <client> <password> <filename> [outpath|-]          (streaming; default stdout)
  get-chunk <client> <password> <filename> <serial>
  snapshot <client> <password> <filename> <serial>
  update-chunk <client> <password> <filename> <serial> <localpath>
  rm <client> <password> <filename>
  rm-chunk <client> <password> <filename> <serial>
  get-range <client> <password> <filename> <offset> <length>
  count <client> <password> <filename>
  scrub
  decommission <provider-index>
  tables
  stats
  health               (providers, op metrics, replication lag if clustered)
  locate <client> <filename>   (with -shards: owning shard + replica set)
  wal-info <wal-dir>   (offline: inventory + replay-validate a WAL directory)`)
	os.Exit(2)
}
