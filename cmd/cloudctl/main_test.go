package main

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/transport"
)

// cliFixture stands up a distributor server and returns a client plus a
// temp directory for file arguments.
func cliFixture(t *testing.T) (*transport.Client, string) {
	t.Helper()
	fleet, err := provider.NewFleet()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p := provider.MustNew(provider.Info{
			Name: fmt.Sprintf("cli%d", i), PL: privacy.High, CL: privacy.CostLevel(i % 4),
		}, provider.Options{})
		if err := fleet.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	d, err := core.New(core.Config{Fleet: fleet})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(transport.NewDistributorServer(d))
	t.Cleanup(srv.Close)
	return transport.NewClient(srv.URL, srv.Client()), t.TempDir()
}

func TestCLIWorkflow(t *testing.T) {
	c, dir := cliFixture(t)

	steps := [][]string{
		{"register", "bob"},
		{"passwd", "bob", "x9pr", "3"},
	}
	for _, s := range steps {
		if err := run(c, s[0], s[1:], 1, false, 0); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
	}

	// Upload a local file.
	src := filepath.Join(dir, "in.dat")
	content := bytes.Repeat([]byte("the quick brown fox "), 2000)
	if err := os.WriteFile(src, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(c, "upload", []string{"bob", "x9pr", "file1", src, "2"}, 1, false, 0); err != nil {
		t.Fatalf("upload: %v", err)
	}

	// Retrieve it back and compare.
	dst := filepath.Join(dir, "out.dat")
	if err := run(c, "get", []string{"bob", "x9pr", "file1", dst}, 1, false, 0); err != nil {
		t.Fatalf("get: %v", err)
	}
	back, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, content) {
		t.Fatal("CLI round trip mismatch")
	}

	// Metadata commands.
	if err := run(c, "count", []string{"bob", "x9pr", "file1"}, 1, false, 0); err != nil {
		t.Fatalf("count: %v", err)
	}
	if err := run(c, "tables", nil, 1, false, 0); err != nil {
		t.Fatalf("tables: %v", err)
	}
	if err := run(c, "stats", nil, 1, false, 0); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if err := run(c, "scrub", nil, 1, false, 0); err != nil {
		t.Fatalf("scrub: %v", err)
	}

	// Update a chunk and read its snapshot.
	upd := filepath.Join(dir, "upd.dat")
	if err := os.WriteFile(upd, []byte("updated contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(c, "update-chunk", []string{"bob", "x9pr", "file1", "0", upd}, 1, false, 0); err != nil {
		t.Fatalf("update-chunk: %v", err)
	}
	if err := run(c, "snapshot", []string{"bob", "x9pr", "file1", "0"}, 1, false, 0); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := run(c, "get-chunk", []string{"bob", "x9pr", "file1", "1"}, 1, false, 0); err != nil {
		t.Fatalf("get-chunk: %v", err)
	}
	if err := run(c, "get-range", []string{"bob", "x9pr", "file1", "100", "50"}, 1, false, 0); err != nil {
		t.Fatalf("get-range: %v", err)
	}

	// Decommission a provider and keep reading.
	if err := run(c, "decommission", []string{"1"}, 1, false, 0); err != nil {
		t.Fatalf("decommission: %v", err)
	}
	if err := run(c, "get", []string{"bob", "x9pr", "file1", dst}, 1, false, 0); err != nil {
		t.Fatalf("get after decommission: %v", err)
	}

	// Remove.
	if err := run(c, "rm-chunk", []string{"bob", "x9pr", "file1", "0"}, 1, false, 0); err != nil {
		t.Fatalf("rm-chunk: %v", err)
	}
	if err := run(c, "rm", []string{"bob", "x9pr", "file1"}, 1, false, 0); err != nil {
		t.Fatalf("rm: %v", err)
	}
	if err := run(c, "get", []string{"bob", "x9pr", "file1", dst}, 1, false, 0); err == nil {
		t.Fatal("get after rm succeeded")
	}
}

func TestCLIErrors(t *testing.T) {
	c, dir := cliFixture(t)
	if err := run(c, "register", []string{"bob"}, 1, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(c, "register", []string{"bob"}, 1, false, 0); err == nil {
		t.Fatal("duplicate register succeeded")
	}
	if err := run(c, "passwd", []string{"bob", "pw", "notanumber"}, 1, false, 0); err == nil {
		t.Fatal("bad level accepted")
	}
	if err := run(c, "upload", []string{"bob", "pw", "f", filepath.Join(dir, "missing.dat")}, 1, false, 0); err == nil {
		t.Fatal("missing local file accepted")
	}
	if err := run(c, "get-chunk", []string{"bob", "pw", "f", "NaN"}, 1, false, 0); err == nil {
		t.Fatal("bad serial accepted")
	}
	if err := run(c, "decommission", []string{"NaN"}, 1, false, 0); err == nil {
		t.Fatal("bad index accepted")
	}
}

func TestCLIRaid6AndMislead(t *testing.T) {
	c, dir := cliFixture(t)
	_ = run(c, "register", []string{"bob"}, 1, false, 0)
	_ = run(c, "passwd", []string{"bob", "pw", "3"}, 1, false, 0)
	src := filepath.Join(dir, "in.dat")
	content := bytes.Repeat([]byte{0xAB}, 50_000)
	if err := os.WriteFile(src, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(c, "upload", []string{"bob", "pw", "f6", src}, 2, true, 0.2); err != nil {
		t.Fatalf("raid6+mislead upload: %v", err)
	}
	dst := filepath.Join(dir, "out.dat")
	if err := run(c, "get", []string{"bob", "pw", "f6", dst}, 1, false, 0); err != nil {
		t.Fatal(err)
	}
	back, _ := os.ReadFile(dst)
	if !bytes.Equal(back, content) {
		t.Fatal("raid6+mislead round trip mismatch")
	}
}

func TestCLIStreamingPutCat(t *testing.T) {
	c, dir := cliFixture(t)
	_ = run(c, "register", []string{"bob"}, 1, false, 0)
	_ = run(c, "passwd", []string{"bob", "pw", "3"}, 1, false, 0)
	src := filepath.Join(dir, "in.dat")
	content := bytes.Repeat([]byte("stream me around the fleet "), 4000)
	if err := os.WriteFile(src, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(c, "put", []string{"bob", "pw", "fs", src, "2"}, 1, false, 0); err != nil {
		t.Fatalf("put: %v", err)
	}
	dst := filepath.Join(dir, "out.dat")
	if err := run(c, "cat", []string{"bob", "pw", "fs", dst}, 1, false, 0); err != nil {
		t.Fatalf("cat: %v", err)
	}
	back, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, content) {
		t.Fatal("put/cat round trip mismatch")
	}
	// The buffered commands interoperate with the streamed object.
	if err := run(c, "get", []string{"bob", "pw", "fs", dst}, 1, false, 0); err != nil {
		t.Fatalf("get after put: %v", err)
	}
	if back, _ = os.ReadFile(dst); !bytes.Equal(back, content) {
		t.Fatal("get after put mismatch")
	}
	if err := run(c, "put", []string{"bob", "pw", "fs", src}, 1, false, 0); err == nil {
		t.Fatal("duplicate put succeeded")
	}
	if err := run(c, "cat", []string{"bob", "pw", "missing", dst}, 1, false, 0); err == nil {
		t.Fatal("cat of missing file succeeded")
	}
}
