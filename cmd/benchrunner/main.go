// Command benchrunner regenerates every table and figure of the paper's
// evaluation and prints them in the paper's layout. Each experiment id
// maps to a section of EXPERIMENTS.md.
//
// Usage:
//
//	benchrunner -exp all
//	benchrunner -exp table4
//	benchrunner -exp fig4 -verbose
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/provider"
)

var experimentsOrder = []string{
	"tables", "table4", "table4sys",
	"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
	"dist", "chunksize", "mislead", "raidcmp", "compromise", "encfrag", "baskets", "health", "cost",
}

func main() {
	exp := flag.String("exp", "all", "experiment id: "+strings.Join(experimentsOrder, "|")+"|all")
	verbose := flag.Bool("verbose", false, "print full dendrograms for the GPS figures")
	flag.Parse()

	ids := []string{*exp}
	if *exp == "all" {
		ids = experimentsOrder
	}
	for _, id := range ids {
		fmt.Printf("==== experiment %s ====\n", id)
		if err := run(id, *verbose); err != nil {
			log.Fatalf("benchrunner %s: %v", id, err)
		}
		fmt.Println()
	}
}

func run(id string, verbose bool) error {
	switch id {
	case "tables", "table1", "table2", "table3", "fig3":
		// Tables I–III and the Fig. 3 walkthrough share the scenario.
		out, err := experiments.Figure3Report()
		if err != nil {
			return err
		}
		fmt.Print(out)
	case "table4":
		r, err := experiments.Table4()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable4(r))
	case "table4sys":
		r, err := experiments.Table4System(300, 1)
		if err != nil {
			return err
		}
		fmt.Printf("end-to-end Table IV attack over the real system (%d rows)\n\n", r.RowsUploaded)
		fmt.Printf("single provider: rows=%d relErr vs planted model=%.3f\n", r.Full.RowsRecovered, r.TruthErrFull)
		if r.Full.Model != nil {
			fmt.Printf("  model: %v\n", r.Full.Model)
		}
		fmt.Println("three-provider split, per-insider fits:")
		for name, pr := range r.PerProvider {
			if pr.Model == nil {
				fmt.Printf("  %-10s rows=%d  mining FAILED (%v)\n", name, pr.RowsRecovered, pr.FitErr)
				continue
			}
			fmt.Printf("  %-10s rows=%d  model: %v\n", name, pr.RowsRecovered, pr.Model)
		}
		fmt.Printf("fragment relErr range: [%.3f, %.3f] (whole-data: %.3f)\n",
			r.TruthErrFragMin, r.TruthErrFragMax, r.TruthErrFull)
	case "fig1":
		r, err := experiments.DistributionTime(256<<10, 8, 5, provider.LatencyModel{}, 1)
		if err != nil {
			return err
		}
		fmt.Printf("Fig. 1 single-distributor data path: %d bytes -> %d chunks + %d parity over %d providers\n",
			r.FileBytes, r.Chunks, r.Parity, r.Providers)
		fmt.Printf("distribution wall time: %v, consistency (read-back): %v\n", r.WallTime, r.ReadBackOK)
	case "fig2":
		r, err := experiments.MultiDistributor(3, 6, 1)
		if err != nil {
			return err
		}
		fmt.Printf("Fig. 2 extended architecture: %d distributors\n", r.Distributors)
		fmt.Printf("  upload via primary:            %v\n", r.UploadOK)
		fmt.Printf("  retrieval via primary:         %v\n", r.PrimaryRetrievalOK)
		fmt.Printf("  retrieval with primary down:   %v (served by secondary)\n", r.FailoverRetrievalOK)
		fmt.Printf("  upload refused while primary down: %v\n", r.UploadBlockedOK)
	case "fig4", "fig5", "fig6":
		cfg := dataset.DefaultGPSConfig()
		r, err := experiments.GPSFigures(cfg, 500)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatGPSFigures(r))
		if verbose {
			fmt.Println("\nFig. 4 dendrogram:")
			fmt.Print(experiments.GPSDendrogramASCII(&r.Full))
			for i := range r.Fragments {
				fmt.Printf("\nFig. %d dendrogram:\n", 5+i)
				fmt.Print(experiments.GPSDendrogramASCII(&r.Fragments[i]))
			}
		}
	case "dist":
		rows, err := experiments.DistributionSweep(
			[]int{32 << 10, 128 << 10, 512 << 10, 2 << 20},
			[]int{3, 6, 12},
			provider.LatencyModel{},
		)
		if err != nil {
			return err
		}
		fmt.Println("§VIII-B distribution time sweep:")
		fmt.Print(experiments.FormatDistributionSweep(rows))
	case "chunksize":
		points, err := experiments.AblationChunkSize([]int{16 << 10, 8 << 10, 2 << 10, 512, 128}, 400, 4, 1)
		if err != nil {
			return err
		}
		fmt.Println("chunk size vs best-insider attack quality (§VII-C):")
		fmt.Print(experiments.FormatChunkSizeAblation(points))
	case "mislead":
		points, err := experiments.AblationMislead([]int{0, 25, 50, 100, 200}, 200, 1)
		if err != nil {
			return err
		}
		fmt.Println("misleading decoy records vs attack quality and overhead (§VII-D):")
		fmt.Print(experiments.FormatMisleadAblation(points))
	case "raidcmp":
		points, err := experiments.AblationRAID(3, 0.1, 1, 6, 1)
		if err != nil {
			return err
		}
		fmt.Println("RAID level comparison (availability & storage, §III-B):")
		fmt.Print(experiments.FormatRaidAblation(points))
	case "compromise":
		points, err := experiments.AblationCompromise(5, 400, 1)
		if err != nil {
			return err
		}
		fmt.Println("outside attacker: compromised providers vs mining success:")
		fmt.Print(experiments.FormatCompromise(points))
	case "baskets":
		cfg := dataset.DefaultBasketConfig()
		points, err := experiments.BasketRuleExperiment(cfg, 4, 0.05, 0.7)
		if err != nil {
			return err
		}
		fmt.Println("association-rule recovery: whole log vs per-insider fragments (§II-B):")
		fmt.Print(experiments.FormatBasketExperiment(points))
	case "health":
		cfg := dataset.DefaultHealthConfig()
		points, baseline, err := experiments.HealthPredictionExperiment(cfg, 4)
		if err != nil {
			return err
		}
		fmt.Println("risk-prediction attack: whole cohort vs per-insider fragments:")
		fmt.Print(experiments.FormatHealthExperiment(points, baseline))
	case "cost":
		r, err := experiments.CostTradeoff(3, 128<<10, 1)
		if err != nil {
			return err
		}
		fmt.Println("security/cost trade-off billing (§IV-B):")
		fmt.Print(experiments.FormatCost(r))
	case "encfrag":
		points, err := experiments.EncryptionVsFragmentation(
			[]int{256 << 10, 1 << 20, 4 << 20, 16 << 20}, 64<<10, 4096)
		if err != nil {
			return err
		}
		fmt.Println("encryption vs fragmentation query cost, analytic model (§VII-E):")
		fmt.Print(experiments.FormatEncVsFrag(points))
		live, err := experiments.EncryptionVsFragmentationLive(
			[]int{256 << 10, 1 << 20, 4 << 20}, 4096, 1)
		if err != nil {
			return err
		}
		fmt.Println("\nmeasured end-to-end (real provider byte counters):")
		fmt.Print(experiments.FormatEncVsFragLive(live))
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q; valid: %s\n", id, strings.Join(experimentsOrder, ", "))
		os.Exit(2)
	}
	return nil
}
