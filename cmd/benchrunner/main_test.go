package main

import "testing"

// TestAllExperimentsRun executes every experiment id end to end — the
// same code path `benchrunner -exp all` takes.
func TestAllExperimentsRun(t *testing.T) {
	for _, id := range experimentsOrder {
		id := id
		t.Run(id, func(t *testing.T) {
			if err := run(id, false); err != nil {
				t.Fatalf("experiment %s: %v", id, err)
			}
		})
	}
}

func TestVerboseGPS(t *testing.T) {
	if err := run("fig4", true); err != nil {
		t.Fatal(err)
	}
}
