// Command provider runs one simulated cloud storage provider as an HTTP
// service: the S3-like entity of the paper's architecture, storing chunks
// by virtual id.
//
// Usage:
//
//	provider -addr :9001 -name Titans -pl 3 -cl 2
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/privacy"
	"repro/internal/provider"
	"repro/internal/transport"
)

func main() {
	var (
		addr      = flag.String("addr", ":9001", "listen address")
		name      = flag.String("name", "provider1", "provider name")
		pl        = flag.Int("pl", 3, "privacy (reputation) level 0-3")
		cl        = flag.Int("cl", 1, "cost level 0-3")
		dataDir   = flag.String("data-dir", "", "persist blobs under this directory (empty = in-memory)")
		failRate  = flag.Float64("fail-rate", 0, "injected transient failure probability [0,1)")
		perOpMs   = flag.Int("latency-ms", 0, "simulated per-operation latency in milliseconds")
		perByteNs = flag.Int("latency-ns-per-byte", 0, "simulated per-byte latency in nanoseconds")
	)
	flag.Parse()

	info := provider.Info{
		Name: *name,
		PL:   privacy.Level(*pl),
		CL:   privacy.CostLevel(*cl),
	}
	var p provider.Provider
	var err error
	if *dataDir != "" {
		p, err = provider.NewDiskProvider(info, *dataDir)
	} else {
		opts := provider.Options{
			FailureRate: *failRate,
			Latency: provider.LatencyModel{
				PerOp:   time.Duration(*perOpMs) * time.Millisecond,
				PerByte: time.Duration(*perByteNs),
			},
		}
		if opts.Latency.PerOp > 0 || opts.Latency.PerByte > 0 {
			opts.Sleep = time.Sleep
		}
		p, err = provider.New(info, opts)
	}
	if err != nil {
		log.Fatalf("provider: %v", err)
	}
	storage := "in-memory"
	if *dataDir != "" {
		storage = "disk:" + *dataDir
	}
	fmt.Printf("cloud provider %q (PL%d, CL%d, %s) listening on %s\n", *name, *pl, *cl, storage, *addr)
	log.Fatal(transport.NewHTTPServer(*addr, transport.NewProviderServer(p)).ListenAndServe())
}
