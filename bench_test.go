package privcloud

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus the ablations DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark regenerates the corresponding artifact via the
// internal/experiments package; cmd/benchrunner prints the same rows in
// table form.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dht"
	"repro/internal/experiments"
	"repro/internal/mining"
	"repro/internal/provider"
	"repro/internal/raid"
	"repro/internal/sim"
)

// BenchmarkTable4RegressionAttack regenerates Table IV: the full-data
// regression and the three misleading per-fragment fits.
func BenchmarkTable4RegressionAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if len(r.FragmentModels) != 3 {
			b.Fatal("wrong fragment count")
		}
	}
	r, _ := experiments.Table4()
	b.ReportMetric(r.FragmentErrs[0], "frag1-relerr")
	b.ReportMetric(r.PairwiseDist, "frag-pairwise-dist")
}

// BenchmarkTable4SystemAttack runs the end-to-end version: upload through
// the distributor, insiders mine their own providers.
func BenchmarkTable4SystemAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table4System(300, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if r.Full.FitErr != nil {
			b.Fatal(r.Full.FitErr)
		}
	}
	r, _ := experiments.Table4System(300, 1)
	b.ReportMetric(r.TruthErrFull, "whole-data-relerr")
	b.ReportMetric(r.TruthErrFragMax, "fragment-worst-relerr")
}

// BenchmarkFig1Distribution regenerates the Fig. 1 single-distributor
// data path: fragment + stripe + scatter + read back (the paper's
// "Distribution time").
func BenchmarkFig1Distribution(b *testing.B) {
	for _, size := range []int{64 << 10, 256 << 10, 1 << 20} {
		b.Run(fmt.Sprintf("file=%dKiB", size>>10), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				r, err := experiments.DistributionTime(size, 8, raid.RAID5, provider.LatencyModel{}, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				if !r.ReadBackOK {
					b.Fatal("consistency check failed")
				}
			}
		})
	}
}

// BenchmarkFig2MultiDistributor regenerates the Fig. 2 extended
// architecture drill: upload via primary, retrieval failover to
// secondaries.
func BenchmarkFig2MultiDistributor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.MultiDistributor(3, 6, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if !r.FailoverRetrievalOK {
			b.Fatal("failover retrieval failed")
		}
	}
}

// BenchmarkFig3Walkthrough regenerates the Fig. 3 application
// architecture: tables I–III and the accept/deny request pair.
func BenchmarkFig3Walkthrough(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc, err := core.NewFigure3Scenario()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sc.Distributor.GetChunk("Bob", "x9pr", "file1", 0); err != nil {
			b.Fatal(err)
		}
		if _, err := sc.Distributor.GetChunk("Bob", "aB1c", "file1", 0); err == nil {
			b.Fatal("denial case served")
		}
	}
}

// BenchmarkFig4FullClustering regenerates Fig. 4: hierarchical clustering
// of the entire GPS data set (>3000 observations, 30 users).
func BenchmarkFig4FullClustering(b *testing.B) {
	cfg := dataset.DefaultGPSConfig()
	_, points, err := dataset.GenerateGPS(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vectors, _ := dataset.UserFeatureVectors(points)
		if _, err := mining.ClusterPoints(vectors, mining.AverageLinkage); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Fig6FragmentClustering regenerates Figs. 5 and 6: the two
// 500-observation fragment dendrograms plus the migration statistics.
func BenchmarkFig5Fig6FragmentClustering(b *testing.B) {
	cfg := dataset.DefaultGPSConfig()
	for i := 0; i < b.N; i++ {
		r, err := experiments.GPSFigures(cfg, 500)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Fragments) != 2 {
			b.Fatal("wrong fragment count")
		}
	}
	r, _ := experiments.GPSFigures(cfg, 500)
	b.ReportMetric(r.TruthARI[0], "full-ari")
	b.ReportMetric(r.FullARI[0], "frag1-vs-full-ari")
	b.ReportMetric(float64(r.MigratedUsers[0]), "frag1-migrated-users")
}

// BenchmarkDistributionTimeBySize regenerates the §VIII-B distribution-
// time series across file sizes under a WAN-ish latency model.
func BenchmarkDistributionTimeBySize(b *testing.B) {
	latency := provider.LatencyModel{PerOp: 0, PerByte: 0}
	for _, size := range []int{32 << 10, 128 << 10, 512 << 10} {
		b.Run(fmt.Sprintf("%dKiB", size>>10), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if _, err := experiments.DistributionTime(size, 6, raid.RAID5, latency, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistributionTimeByProviders sweeps the fleet size.
func BenchmarkDistributionTimeByProviders(b *testing.B) {
	for _, n := range []int{3, 6, 12} {
		b.Run(fmt.Sprintf("providers=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.DistributionTime(256<<10, n, raid.RAID5, provider.LatencyModel{}, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationChunkSize sweeps chunk size against attack quality
// (§VII-C).
func BenchmarkAblationChunkSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.AblationChunkSize([]int{8 << 10, 2 << 10, 512}, 300, 4, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 3 {
			b.Fatal("wrong point count")
		}
	}
}

// BenchmarkAblationMislead sweeps decoy volume against attack quality and
// overhead (§VII-D).
func BenchmarkAblationMislead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMislead([]int{0, 50, 150}, 200, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRAID compares availability and storage overhead of
// none/RAID5/RAID6 (§III-B).
func BenchmarkAblationRAID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRAID(3, 0.1, 1, 6, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCompromise sweeps the outside attacker's foothold.
func BenchmarkAblationCompromise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCompromise(5, 300, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncryptionVsFragmentation regenerates the §VII-E comparison.
func BenchmarkEncryptionVsFragmentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.EncryptionVsFragmentation([]int{1 << 20, 16 << 20}, 64<<10, 4096)
		if err != nil {
			b.Fatal(err)
		}
		if points[0].Speedup <= 1 {
			b.Fatal("fragmentation not cheaper")
		}
	}
	points, _ := experiments.EncryptionVsFragmentation([]int{16 << 20}, 64<<10, 4096)
	b.ReportMetric(points[0].Speedup, "speedup-16MiB")
}

// BenchmarkBasketRuleAttack measures the association-rule attack (the
// third mining algorithm the paper names) on whole vs fragmented logs.
func BenchmarkBasketRuleAttack(b *testing.B) {
	cfg := dataset.DefaultBasketConfig()
	cfg.Transactions = 600
	for i := 0; i < b.N; i++ {
		points, err := experiments.BasketRuleExperiment(cfg, 4, 0.05, 0.7)
		if err != nil {
			b.Fatal(err)
		}
		if points[0].PlantedFound == 0 {
			b.Fatal("full attack found nothing")
		}
	}
}

// BenchmarkUploadWithReplicas measures the assurance knob's write cost.
func BenchmarkUploadWithReplicas(b *testing.B) {
	for _, replicas := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			sys, err := NewSystem(SystemConfig{Providers: benchProviders(8)})
			if err != nil {
				b.Fatal(err)
			}
			_ = sys.RegisterClient("c")
			_ = sys.AddPassword("c", "pw", High)
			data := dataset.RandomBytes(256<<10, rand.New(rand.NewSource(9)))
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				name := fmt.Sprintf("f%d", i)
				if _, err := sys.Upload("c", "pw", name, data, Moderate, UploadOptions{Replicas: replicas}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecommission measures provider evacuation.
func BenchmarkDecommission(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := NewSystem(SystemConfig{Providers: benchProviders(8)})
		if err != nil {
			b.Fatal(err)
		}
		_ = sys.RegisterClient("c")
		_ = sys.AddPassword("c", "pw", High)
		data := dataset.RandomBytes(256<<10, rand.New(rand.NewSource(int64(i))))
		if _, err := sys.Upload("c", "pw", "f", data, Moderate, UploadOptions{}); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := sys.DecommissionProvider("p0"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUploadThroughput measures raw distributor upload bandwidth.
func BenchmarkUploadThroughput(b *testing.B) {
	sys, err := NewSystem(SystemConfig{Providers: benchProviders(8)})
	if err != nil {
		b.Fatal(err)
	}
	_ = sys.RegisterClient("c")
	_ = sys.AddPassword("c", "pw", High)
	data := dataset.RandomBytes(512<<10, rand.New(rand.NewSource(1)))
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("f%d", i)
		if _, err := sys.Upload("c", "pw", name, data, Moderate, UploadOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetFileThroughput measures retrieval bandwidth (parallel chunk
// fetch + reassembly).
func BenchmarkGetFileThroughput(b *testing.B) {
	sys, err := NewSystem(SystemConfig{Providers: benchProviders(8)})
	if err != nil {
		b.Fatal(err)
	}
	_ = sys.RegisterClient("c")
	_ = sys.AddPassword("c", "pw", High)
	data := dataset.RandomBytes(512<<10, rand.New(rand.NewSource(2)))
	if _, err := sys.Upload("c", "pw", "f", data, Moderate, UploadOptions{}); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.GetFile("c", "pw", "f"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetFileDegraded measures retrieval bandwidth with one provider
// down (RAID-5 reconstruction on the hot path).
func BenchmarkGetFileDegraded(b *testing.B) {
	sys, err := NewSystem(SystemConfig{Providers: benchProviders(8)})
	if err != nil {
		b.Fatal(err)
	}
	_ = sys.RegisterClient("c")
	_ = sys.AddPassword("c", "pw", High)
	data := dataset.RandomBytes(512<<10, rand.New(rand.NewSource(3)))
	if _, err := sys.Upload("c", "pw", "f", data, Moderate, UploadOptions{}); err != nil {
		b.Fatal(err)
	}
	_ = sys.SetProviderOutage("p0", true)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.GetFile("c", "pw", "f"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRAID5Encode and BenchmarkRAID6Encode measure the parity layer.
func BenchmarkRAID5Encode(b *testing.B) {
	shards := make([][]byte, 4)
	for i := range shards {
		shards[i] = dataset.RandomBytes(64<<10, rand.New(rand.NewSource(int64(i))))
	}
	b.SetBytes(int64(4 * 64 << 10))
	for i := 0; i < b.N; i++ {
		if _, err := raid.Encode(raid.RAID5, shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRAID6Encode(b *testing.B) {
	shards := make([][]byte, 4)
	for i := range shards {
		shards[i] = dataset.RandomBytes(64<<10, rand.New(rand.NewSource(int64(i))))
	}
	b.SetBytes(int64(4 * 64 << 10))
	for i := 0; i < b.N; i++ {
		if _, err := raid.Encode(raid.RAID6, shards); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRAID6ReconstructTwoLost measures worst-case recovery.
func BenchmarkRAID6ReconstructTwoLost(b *testing.B) {
	shards := make([][]byte, 4)
	for i := range shards {
		shards[i] = dataset.RandomBytes(64<<10, rand.New(rand.NewSource(int64(i))))
	}
	s, err := raid.Encode(raid.RAID6, shards)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * 64 << 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cp, _ := raid.Encode(raid.RAID6, shards)
		cp.Shards[0] = nil
		cp.Shards[2] = nil
		b.StartTimer()
		if err := cp.Reconstruct(); err != nil {
			b.Fatal(err)
		}
	}
	_ = s
}

// BenchmarkDHTLookup measures Chord-style lookup cost for the client-side
// distributor variant (§IV-C).
func BenchmarkDHTLookup(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			names := make([]string, n)
			for i := range names {
				names[i] = fmt.Sprintf("node-%04d", i)
			}
			ring, err := dht.NewRing(names...)
			if err != nil {
				b.Fatal(err)
			}
			members := ring.Members()
			totalHops := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := ring.Lookup(members[i%len(members)], dht.ChunkKey("file", i))
				if err != nil {
					b.Fatal(err)
				}
				totalHops += res.Hops
			}
			b.ReportMetric(float64(totalHops)/float64(b.N), "hops/op")
		})
	}
}

// BenchmarkHierarchicalClustering measures the mining substrate itself at
// the paper's 30-user scale and beyond.
func BenchmarkHierarchicalClustering(b *testing.B) {
	for _, n := range []int{30, 100} {
		b.Run(fmt.Sprintf("users=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			pts := make([][]float64, n)
			for i := range pts {
				pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mining.ClusterPoints(pts, mining.AverageLinkage); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLinearRegression measures the regression substrate at Table IV
// scale and at sweep scale.
func BenchmarkLinearRegression(b *testing.B) {
	for _, n := range []int{12, 1000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			recs := dataset.GenerateBiddingHistory(n, dataset.PaperBiddingModel(), rand.New(rand.NewSource(5)))
			x, y := dataset.Features(recs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mining.LinearRegression(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchProviders(n int) []ProviderSpec {
	specs := make([]ProviderSpec, n)
	for i := range specs {
		specs[i] = ProviderSpec{Name: fmt.Sprintf("p%d", i), Privacy: High, Cost: i % 4}
	}
	return specs
}

// BenchmarkGetRangePointQuery measures the fragmented point query that
// §VII-E credits over encryption.
func BenchmarkGetRangePointQuery(b *testing.B) {
	sys, err := NewSystem(SystemConfig{Providers: benchProviders(8)})
	if err != nil {
		b.Fatal(err)
	}
	_ = sys.RegisterClient("c")
	_ = sys.AddPassword("c", "pw", High)
	data := dataset.RandomBytes(1<<20, rand.New(rand.NewSource(11)))
	if _, err := sys.Upload("c", "pw", "f", data, Moderate, UploadOptions{}); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.GetRange("c", "pw", "f", (i*4096)%(len(data)-4096), 4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncVsFragLive times the measured §VII-E comparison end to end.
func BenchmarkEncVsFragLive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.EncryptionVsFragmentationLive([]int{1 << 20}, 4096, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if !points[0].BothCorrect {
			b.Fatal("wrong answer")
		}
	}
	points, _ := experiments.EncryptionVsFragmentationLive([]int{1 << 20}, 4096, 1)
	b.ReportMetric(points[0].Speedup, "bytes-speedup")
}

// BenchmarkHealthPredictionAttack regenerates the risk-prediction
// experiment (the paper's health-privacy motivation).
func BenchmarkHealthPredictionAttack(b *testing.B) {
	cfg := dataset.DefaultHealthConfig()
	for i := 0; i < b.N; i++ {
		points, _, err := experiments.HealthPredictionExperiment(cfg, 4)
		if err != nil {
			b.Fatal(err)
		}
		if points[0].Failed {
			b.Fatal("full attack failed")
		}
	}
}

// BenchmarkCostTradeoff regenerates the §IV-B billing comparison.
func BenchmarkCostTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.CostTradeoff(3, 128<<10, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if r.SensitiveOnTrusted != 1.0 {
			b.Fatal("placement policy violated")
		}
	}
	r, _ := experiments.CostTradeoff(3, 128<<10, 1)
	b.ReportMetric(r.Ratio, "cost-ratio")
}

// BenchmarkWorkloadSoak times a 200-operation multi-client soak with
// outage injection — end-to-end system throughput under churn.
func BenchmarkWorkloadSoak(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultWorkloadConfig()
		cfg.Seed = int64(i + 1)
		if _, err := sim.RunWorkload(cfg, 6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScrub times a full integrity pass over a populated system.
func BenchmarkScrub(b *testing.B) {
	sys, err := NewSystem(SystemConfig{Providers: benchProviders(8)})
	if err != nil {
		b.Fatal(err)
	}
	_ = sys.RegisterClient("c")
	_ = sys.AddPassword("c", "pw", High)
	for i := 0; i < 8; i++ {
		data := dataset.RandomBytes(128<<10, rand.New(rand.NewSource(int64(i))))
		if _, err := sys.Upload("c", "pw", fmt.Sprintf("f%d", i), data, Moderate, UploadOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sys.Scrub()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Unrepairable != 0 {
			b.Fatal("healthy system reports damage")
		}
	}
}
