# Tier-1 gate: everything `make check` runs must stay green.
#
#   make check            vet + build + race tests + fuzz seed corpora
#   make test             plain test run
#   make fuzz             short randomized fuzzing of the codec layers
#   FUZZTIME=30s make fuzz  longer fuzz budget
#   make loadbench        warp-class load benchmark + 1→2→4→8 shard scaling curve
#   make bench-loadsmoke  CI load smoke: short strict cloudbench run
#   make memcheck         bounded-memory streaming check (256 MiB object)
#   make simcheck         tier-2: deterministic fault-schedule simulation
#   SIMCHECK_SEEDS=64 SIMCHECK_OPS=600 make simcheck  bigger sweep
#   make walcheck         crash-restart recovery sweep (WAL durability)
#   make shardcheck       sharded-namespace fault sweep (partitions, failover)
#   make minecheck        adversary-in-the-loop mining campaigns + gate
#   MINECHECK_SEEDS=64 make minecheck  bigger sweep
#   make minebench        full 128-cell privacy-vs-performance frontier

GO        ?= go
FUZZTIME  ?= 5s
SIMCHECK_SEEDS ?= 32
SIMCHECK_OPS   ?= 0
MINECHECK_SEEDS ?= 32
# The bench trajectory point: BENCH_<n>.json where n is one past the
# highest index already recorded, so a fresh `make bench`/`make loadbench`
# never silently overwrites the previous PR's numbers. Override with
# BENCHOUT=... to deliberately re-record a point.
BENCHOUT  ?= $(shell ls BENCH_*.json 2>/dev/null | sed -n 's/^BENCH_\([0-9][0-9]*\)\.json$$/\1/p' | sort -n | tail -1 | { read n; echo BENCH_$$((n+1)).json; })
BENCHTIME ?= 1s
LOADDUR   ?= 120s
LOADWARM  ?= 6s
# Large-object profile: every op moves a 64 MiB object, so the report's
# per-op p50 directly compares the streaming pair (sput/sget) against
# the whole-buffer baseline (put/get) at a size the buffered wire format
# only just fits. PL0 (64 KiB chunks) keeps op cost dominated by byte
# movement rather than per-chunk metadata round-trips; one closed-loop
# worker keeps ops uncontended so each latency measures the pipeline
# itself, not cross-op queueing on the 6-provider loopback fleet.
LOADWORKERS ?= 1
LOADMIX   ?= put=22,get=22,range=12,sput=22,sget=22
LOADSIZES ?= 64MiB=100
LOADPL    ?= 0
LOADKEYS  ?= 3
LOADTENANTS ?= 2
LOADWINDOW ?= 16
# Shard-scaling profile: small objects over deliberately slow providers.
# Each in-process provider serializes its ops behind a 12 ms service
# time, so a shard's fleet is a bank of single-server queues and
# aggregate throughput is queueing-bound, not CPU-bound — the curve
# measures namespace sharding, not host parallelism. 24 closed-loop
# workers keep the 1-distributor baseline saturated so added shards
# show up as throughput rather than idle capacity; 4 tenants × 64 keys
# leaves the per-key lease pool well above the worker count so the
# closed loop is never starved for claimable keys.
SCALEDISTS   ?= 1 2 4 8
SCALEPROVS   ?= 4
SCALELAT     ?= 12ms
SCALEWORKERS ?= 24
SCALEKEYS    ?= 64
SCALEDUR     ?= 12s
SCALEWARM    ?= 3s
SCALEMIX     ?= put=35,get=65
SCALESIZES   ?= 2KiB=100

.PHONY: check build vet test race fuzz fmt bench bench-smoke loadbench bench-loadsmoke memcheck simcheck simcheck-short walcheck walcheck-race shardcheck shardcheck-race minecheck minecheck-race minebench

check: vet build race fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Replays and extends the seed corpora of the byte-level codecs — the
# layers where a malformed payload must fail loudly, never corrupt.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSplitReassemble -fuzztime $(FUZZTIME) ./internal/chunker
	$(GO) test -run '^$$' -fuzz FuzzInjectStrip -fuzztime $(FUZZTIME) ./internal/mislead
	$(GO) test -run '^$$' -fuzz FuzzStripHostile -fuzztime $(FUZZTIME) ./internal/mislead
	$(GO) test -run '^$$' -fuzz FuzzEncryptDecrypt -fuzztime $(FUZZTIME) ./internal/cryptofrag
	$(GO) test -run '^$$' -fuzz FuzzDecryptHostile -fuzztime $(FUZZTIME) ./internal/cryptofrag
	$(GO) test -run '^$$' -fuzz FuzzKernels -fuzztime $(FUZZTIME) ./internal/raid
	$(GO) test -run '^$$' -fuzz FuzzEncodeReconstruct -fuzztime $(FUZZTIME) ./internal/raid
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime $(FUZZTIME) ./internal/wal

# Data-plane benchmarks: RAID kernels and distributor read path, three
# interleaved repetitions, summarized to $(BENCHOUT) with speedups over
# the recorded pre-optimization baselines.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) -count 3 \
		./internal/raid ./internal/core | $(GO) run ./cmd/benchjson -out $(BENCHOUT)

# One-iteration smoke run for CI: proves every benchmark still compiles
# and executes without spending CI minutes on stable numbers.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x ./internal/raid ./internal/core | $(GO) run ./cmd/benchjson -out /dev/null

# Warp-class mixed-workload load benchmark (cmd/cloudbench) against an
# in-process networked fleet; latency percentiles and the throughput
# timeline merge into $(BENCHOUT) as the "load" record. A second pass
# re-runs a strict small-object put/get workload at each shard count in
# $(SCALEDISTS) — every point the same profile, only -distributors
# varies — and benchjson folds the runs into the report's scaling curve
# with speedups over the 1-distributor baseline.
loadbench:
	$(GO) run ./cmd/cloudbench -local-providers 6 -workers $(LOADWORKERS) \
		-tenants $(LOADTENANTS) -keys $(LOADKEYS) -pl $(LOADPL) \
		-mix $(LOADMIX) -sizes $(LOADSIZES) -stream-window $(LOADWINDOW) \
		-duration $(LOADDUR) -warmup $(LOADWARM) -seed 7 -out cloudbench.out.json
	for d in $(SCALEDISTS); do \
		$(GO) run ./cmd/cloudbench -distributors $$d \
			-local-providers $(SCALEPROVS) -provider-latency $(SCALELAT) \
			-workers $(SCALEWORKERS) -tenants 4 -keys $(SCALEKEYS) -pl 0 \
			-mix $(SCALEMIX) -sizes $(SCALESIZES) \
			-duration $(SCALEDUR) -warmup $(SCALEWARM) -seed 7 -strict \
			-out cloudbench.scale$$d.json || exit 1; \
	done
	$(GO) run ./cmd/benchjson -load cloudbench.out.json \
		$(foreach d,$(SCALEDISTS),-scaling cloudbench.scale$(d).json) \
		-out $(BENCHOUT) < /dev/null
	@rm -f cloudbench.out.json cloudbench.scale*.json

# CI smoke: a few seconds of mixed load against the in-process fleet;
# strict mode fails the target on any op error.
bench-loadsmoke:
	$(GO) run ./cmd/cloudbench -local-providers 5 -workers 4 -tenants 2 -keys 8 \
		-duration 3s -warmup 500ms -strict -out /dev/null

# Bounded-memory regression gate for the streaming data plane: pushes a
# 256 MiB object (128× the in-flight window) through UploadStream and
# GetFileTo over disk-backed providers and fails if peak heap growth is
# file-bounded instead of window-bounded.
memcheck:
	MEMCHECK=1 $(GO) test ./internal/core -count=1 -run 'TestStreamBoundedMemory' -v

# Tier-2 gate: seeded fault-schedule simulation against the invariant
# oracle (internal/simcheck). Every failure prints a one-line repro:
#   go test ./internal/simcheck -run 'TestSimCheck$' -seed=N -ops=M
simcheck:
	$(GO) test ./internal/simcheck -count=1 -seeds=$(SIMCHECK_SEEDS) -ops=$(SIMCHECK_OPS)

# The CI variant: fewer seeds under the race detector.
simcheck-short:
	$(GO) test -race ./internal/simcheck -count=1 -short

# Crash-restart durability sweep: periodically kill the distributor
# without warning, recover from its WAL, and hold every oracle invariant
# against the recovered state. Failures print a crash-restart repro:
#   go test ./internal/simcheck -run 'TestSimCheckCrashRestart' -seed=N -ops=M
walcheck:
	$(GO) test ./internal/simcheck -count=1 -run 'TestSimCheckCrashRestart|TestSimCheckCatchesLostCommit' -seeds=$(SIMCHECK_SEEDS) -ops=$(SIMCHECK_OPS)

# The CI variant: fewer seeds under the race detector.
walcheck-race:
	$(GO) test -race ./internal/simcheck -count=1 -short -run 'TestSimCheckCrashRestart|TestSimCheckCatchesLostCommit'

# Sharded-namespace fault sweep: seeded schedules of inter-distributor
# partitions, primary outages and crash-restarts across a consistent-hash
# sharded namespace, with per-shard oracle invariants checked at every
# checkpoint. Failures print a repro:
#   go test ./internal/simcheck -run 'TestSimCheckSharded' -seed=N -ops=M
shardcheck:
	$(GO) test ./internal/simcheck -count=1 -run 'TestSimCheckSharded' -seeds=$(SIMCHECK_SEEDS) -ops=$(SIMCHECK_OPS)

# The CI variant: fewer seeds under the race detector.
shardcheck-race:
	$(GO) test -race ./internal/simcheck -count=1 -short -run 'TestSimCheckSharded'

# Adversary-in-the-loop gate (internal/minecheck): stands up the real
# loopback deployment per seed, drives tenant traffic, and mounts the
# mining attacks (regression, clustering, association rules, NB/kNN)
# from malicious-provider vantage points — blobs, request timing, shard
# placement. Defended cells (PL>=2 + mislead) must score below the
# stored thresholds; the undefended control must leak, proving the
# attacks have teeth. Failures print a one-line repro:
#   go test ./internal/minecheck -run 'TestMineCheck$' -seed=N
minecheck:
	$(GO) test ./internal/minecheck -count=1 -seeds=$(MINECHECK_SEEDS)

# The CI variant: fewer seeds under the race detector (also covers
# internal/attack and internal/mining through the campaign paths).
minecheck-race:
	$(GO) test -race ./internal/minecheck ./internal/attack ./internal/mining -count=1 -short

# Full privacy-vs-performance frontier: 128 configuration cells swept by
# cmd/minecheck, embedded into $(BENCHOUT) as the "frontier" record.
minebench:
	$(GO) run ./cmd/minecheck -seed 1 -out minecheck.frontier.json -table
	$(GO) run ./cmd/benchjson -frontier minecheck.frontier.json -out $(BENCHOUT) < /dev/null
	@rm -f minecheck.frontier.json

fmt:
	gofmt -l -w .
