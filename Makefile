# Tier-1 gate: everything `make check` runs must stay green.
#
#   make check            vet + build + race tests + fuzz seed corpora
#   make test             plain test run
#   make fuzz             short randomized fuzzing of the codec layers
#   FUZZTIME=30s make fuzz  longer fuzz budget

GO       ?= go
FUZZTIME ?= 5s

.PHONY: check build vet test race fuzz fmt

check: vet build race fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Replays and extends the seed corpora of the byte-level codecs — the
# layers where a malformed payload must fail loudly, never corrupt.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSplitReassemble -fuzztime $(FUZZTIME) ./internal/chunker
	$(GO) test -run '^$$' -fuzz FuzzInjectStrip -fuzztime $(FUZZTIME) ./internal/mislead
	$(GO) test -run '^$$' -fuzz FuzzStripHostile -fuzztime $(FUZZTIME) ./internal/mislead
	$(GO) test -run '^$$' -fuzz FuzzEncryptDecrypt -fuzztime $(FUZZTIME) ./internal/cryptofrag
	$(GO) test -run '^$$' -fuzz FuzzDecryptHostile -fuzztime $(FUZZTIME) ./internal/cryptofrag

fmt:
	gofmt -l -w .
