# Tier-1 gate: everything `make check` runs must stay green.
#
#   make check            vet + build + race tests + fuzz seed corpora
#   make test             plain test run
#   make fuzz             short randomized fuzzing of the codec layers
#   FUZZTIME=30s make fuzz  longer fuzz budget
#   make simcheck         tier-2: deterministic fault-schedule simulation
#   SIMCHECK_SEEDS=64 SIMCHECK_OPS=600 make simcheck  bigger sweep
#   make walcheck         crash-restart recovery sweep (WAL durability)

GO        ?= go
FUZZTIME  ?= 5s
SIMCHECK_SEEDS ?= 32
SIMCHECK_OPS   ?= 0
BENCHOUT  ?= BENCH_6.json
BENCHTIME ?= 1s

.PHONY: check build vet test race fuzz fmt bench bench-smoke simcheck simcheck-short walcheck walcheck-race

check: vet build race fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Replays and extends the seed corpora of the byte-level codecs — the
# layers where a malformed payload must fail loudly, never corrupt.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSplitReassemble -fuzztime $(FUZZTIME) ./internal/chunker
	$(GO) test -run '^$$' -fuzz FuzzInjectStrip -fuzztime $(FUZZTIME) ./internal/mislead
	$(GO) test -run '^$$' -fuzz FuzzStripHostile -fuzztime $(FUZZTIME) ./internal/mislead
	$(GO) test -run '^$$' -fuzz FuzzEncryptDecrypt -fuzztime $(FUZZTIME) ./internal/cryptofrag
	$(GO) test -run '^$$' -fuzz FuzzDecryptHostile -fuzztime $(FUZZTIME) ./internal/cryptofrag
	$(GO) test -run '^$$' -fuzz FuzzKernels -fuzztime $(FUZZTIME) ./internal/raid
	$(GO) test -run '^$$' -fuzz FuzzEncodeReconstruct -fuzztime $(FUZZTIME) ./internal/raid
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime $(FUZZTIME) ./internal/wal

# Data-plane benchmarks: RAID kernels and distributor read path, three
# interleaved repetitions, summarized to $(BENCHOUT) with speedups over
# the recorded pre-optimization baselines.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) -count 3 \
		./internal/raid ./internal/core | $(GO) run ./cmd/benchjson -out $(BENCHOUT)

# One-iteration smoke run for CI: proves every benchmark still compiles
# and executes without spending CI minutes on stable numbers.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x ./internal/raid ./internal/core | $(GO) run ./cmd/benchjson -out /dev/null

# Tier-2 gate: seeded fault-schedule simulation against the invariant
# oracle (internal/simcheck). Every failure prints a one-line repro:
#   go test ./internal/simcheck -run 'TestSimCheck$' -seed=N -ops=M
simcheck:
	$(GO) test ./internal/simcheck -count=1 -seeds=$(SIMCHECK_SEEDS) -ops=$(SIMCHECK_OPS)

# The CI variant: fewer seeds under the race detector.
simcheck-short:
	$(GO) test -race ./internal/simcheck -count=1 -short

# Crash-restart durability sweep: periodically kill the distributor
# without warning, recover from its WAL, and hold every oracle invariant
# against the recovered state. Failures print a crash-restart repro:
#   go test ./internal/simcheck -run 'TestSimCheckCrashRestart' -seed=N -ops=M
walcheck:
	$(GO) test ./internal/simcheck -count=1 -run 'TestSimCheckCrashRestart|TestSimCheckCatchesLostCommit' -seeds=$(SIMCHECK_SEEDS) -ops=$(SIMCHECK_OPS)

# The CI variant: fewer seeds under the race detector.
walcheck-race:
	$(GO) test -race ./internal/simcheck -count=1 -short -run 'TestSimCheckCrashRestart|TestSimCheckCatchesLostCommit'

fmt:
	gofmt -l -w .
