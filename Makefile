# Tier-1 gate: everything `make check` runs must stay green.
#
#   make check            vet + build + race tests + fuzz seed corpora
#   make test             plain test run
#   make fuzz             short randomized fuzzing of the codec layers
#   FUZZTIME=30s make fuzz  longer fuzz budget

GO        ?= go
FUZZTIME  ?= 5s
BENCHOUT  ?= BENCH_4.json
BENCHTIME ?= 1s

.PHONY: check build vet test race fuzz fmt bench bench-smoke

check: vet build race fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Replays and extends the seed corpora of the byte-level codecs — the
# layers where a malformed payload must fail loudly, never corrupt.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSplitReassemble -fuzztime $(FUZZTIME) ./internal/chunker
	$(GO) test -run '^$$' -fuzz FuzzInjectStrip -fuzztime $(FUZZTIME) ./internal/mislead
	$(GO) test -run '^$$' -fuzz FuzzStripHostile -fuzztime $(FUZZTIME) ./internal/mislead
	$(GO) test -run '^$$' -fuzz FuzzEncryptDecrypt -fuzztime $(FUZZTIME) ./internal/cryptofrag
	$(GO) test -run '^$$' -fuzz FuzzDecryptHostile -fuzztime $(FUZZTIME) ./internal/cryptofrag
	$(GO) test -run '^$$' -fuzz FuzzKernels -fuzztime $(FUZZTIME) ./internal/raid
	$(GO) test -run '^$$' -fuzz FuzzEncodeReconstruct -fuzztime $(FUZZTIME) ./internal/raid

# Data-plane benchmarks: RAID kernels and distributor read path, three
# interleaved repetitions, summarized to $(BENCHOUT) with speedups over
# the recorded pre-optimization baselines.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) -count 3 \
		./internal/raid ./internal/core | $(GO) run ./cmd/benchjson -out $(BENCHOUT)

# One-iteration smoke run for CI: proves every benchmark still compiles
# and executes without spending CI minutes on stable numbers.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x ./internal/raid ./internal/core | $(GO) run ./cmd/benchjson -out /dev/null

fmt:
	gofmt -l -w .
