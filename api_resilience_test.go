package privcloud

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSystemReplicas(t *testing.T) {
	sys := demoSystem(t)
	data := make([]byte, 40_000)
	rand.New(rand.NewSource(10)).Read(data)
	if _, err := sys.Upload("acme", "s3cret", "r", data, Moderate, UploadOptions{Replicas: 1}); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.MirrorShards != st.Chunks {
		t.Fatalf("mirrors = %d, chunks = %d", st.MirrorShards, st.Chunks)
	}
	back, err := sys.GetFile("acme", "s3cret", "r")
	if err != nil || !bytes.Equal(back, data) {
		t.Fatalf("round trip: %v", err)
	}
}

func TestSystemDecommission(t *testing.T) {
	sys := demoSystem(t)
	data := make([]byte, 60_000)
	rand.New(rand.NewSource(11)).Read(data)
	if _, err := sys.Upload("acme", "s3cret", "d", data, Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	// Evacuate the busiest provider.
	victimName := ""
	most := -1
	for _, p := range sys.Fleet().All() {
		if p.Len() > most {
			victimName, most = p.Info().Name, p.Len()
		}
	}
	rep, err := sys.DecommissionProvider(victimName)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChunksMoved+rep.ParityMoved == 0 {
		t.Fatalf("nothing moved: %+v", rep)
	}
	victim, _, _ := sys.Fleet().ByName(victimName)
	if victim.Len() != 0 {
		t.Fatalf("victim still holds %d keys", victim.Len())
	}
	if !victim.Down() {
		t.Fatal("victim not marked down after decommission")
	}
	back, err := sys.GetFile("acme", "s3cret", "d")
	if err != nil || !bytes.Equal(back, data) {
		t.Fatalf("data after decommission: %v", err)
	}
	// New uploads avoid the decommissioned provider.
	if _, err := sys.Upload("acme", "s3cret", "d2", data, Moderate, UploadOptions{}); err != nil {
		t.Fatal(err)
	}
	if victim.Len() != 0 {
		t.Fatal("new upload placed shards on the decommissioned provider")
	}
	if _, err := sys.DecommissionProvider("ghost"); err == nil {
		t.Fatal("unknown provider accepted")
	}
}
